"""Scalar-oracle vs vectorised-engine equivalence.

The columnar analysis plane must reproduce the scalar reference:
exactly where the floating-point accumulation order is preserved
(k-means, histogram binning, moving average), and to tight tolerance
where NumPy's pairwise summation reorders additions (per-cut statistics,
autocorrelation).  The workflow-level tests assert the end-to-end
``columnar=True`` pipeline against ``columnar=False`` on the threads,
processes and cluster backends.
"""

import math
import random

import numpy as np
import pytest

from repro.analysis.filters import moving_average, moving_average_array
from repro.analysis.histogram import histogram
from repro.analysis.periodogram import autocorrelation, autocorrelation_array
from repro.analysis.stats import block_statistics, cut_statistics
from repro.sim.trajectory import Cut

REL = 1e-12


def random_block(rng, n_cuts, n_traj, n_obs):
    return np.array([[[rng.uniform(0, 500) for _ in range(n_obs)]
                      for _ in range(n_traj)]
                     for _ in range(n_cuts)])


class TestBlockStatistics:
    def test_matches_scalar_cut_statistics(self):
        rng = random.Random(0)
        data = random_block(rng, 6, 33, 3)
        grids = np.arange(10, 16)
        times = np.linspace(5.0, 7.5, 6)
        block = block_statistics(grids, times, data)
        for i, got in enumerate(block):
            cut = Cut(int(grids[i]), float(times[i]), data=data[i])
            ref = cut_statistics(cut)
            assert got.grid_index == ref.grid_index
            assert got.time == ref.time
            assert got.n_trajectories == ref.n_trajectories
            assert got.minimum == ref.minimum  # order-free: exact
            assert got.maximum == ref.maximum
            for a, b in zip(got.mean, ref.mean):
                assert a == pytest.approx(b, rel=REL)
            for a, b in zip(got.variance, ref.variance):
                assert a == pytest.approx(b, rel=REL)
            for a, b in zip(got.median, ref.median):
                assert a == pytest.approx(b, rel=REL)

    def test_single_trajectory_variance_zero(self):
        data = np.array([[[4.0, 5.0]]])
        stats = block_statistics(np.array([0]), np.array([0.0]), data)
        assert stats[0].variance == (0.0, 0.0)
        ref = cut_statistics(Cut(0, 0.0, data=data[0]))
        assert stats[0].variance == ref.variance

    def test_empty_block(self):
        assert block_statistics(np.array([]), np.array([]),
                                np.empty((0, 4, 2))) == []

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            block_statistics(np.array([0]), np.array([0.0]),
                             np.zeros((2, 2)))


class TestFiltersHistogramExact:
    def test_moving_average_matches_python_prefix_loop(self):
        rng = random.Random(1)
        values = [rng.uniform(-10, 10) for _ in range(257)]
        for width in (1, 2, 3, 5, 10, 257, 500):
            got = moving_average(values, width)
            # scalar reference: truncated centred mean per index
            half = width // 2
            ref = []
            for i in range(len(values)):
                lo, hi = max(0, i - half), min(len(values), i + half + 1)
                ref.append(sum(values[lo:hi]) / (hi - lo))
            assert got == pytest.approx(ref, rel=REL)
            assert list(moving_average_array(values, width)) == got

    def test_histogram_binning_matches_int_cast(self):
        rng = random.Random(2)
        values = [rng.uniform(-5, 5) for _ in range(1000)]
        got = histogram(values, n_bins=13)
        lo = min(values)
        hi = max(values)
        width = (hi - lo) / 13
        ref = [0] * 13
        for v in values:
            ref[min(12, max(0, int((v - lo) / width)))] += 1
        assert got.counts == ref  # exact: same truncation semantics
        assert got.total == 1000

    def test_histogram_accepts_ndarray(self):
        arr = np.array([0.0, 1.0, 2.0, 2.0])
        h = histogram(arr, n_bins=2)
        assert h.counts == histogram(list(arr), n_bins=2).counts


class TestAutocorrelation:
    def test_array_matches_scalar(self):
        rng = random.Random(3)
        values = [math.sin(i / 5.0) + rng.uniform(-0.1, 0.1)
                  for i in range(200)]
        ref = autocorrelation(values)
        got = autocorrelation_array(values)
        assert len(got) == len(ref)
        assert list(got) == pytest.approx(ref, rel=1e-9, abs=1e-12)

    def test_constant_series(self):
        ref = autocorrelation([3.0] * 16)
        got = autocorrelation_array([3.0] * 16)
        assert list(got) == ref

    def test_max_lag(self):
        values = [float(i % 4) for i in range(32)]
        assert list(autocorrelation_array(values, max_lag=5)) == \
            pytest.approx(autocorrelation(values, max_lag=5), rel=1e-9)


class TestWorkflowEquivalence:
    """columnar=True vs columnar=False end to end, per backend."""

    def _config(self, backend, **overrides):
        from repro.pipeline import WorkflowConfig
        base = dict(n_simulations=6, t_end=6.0, sample_every=0.5,
                    quantum=2.0, n_sim_workers=2, window_size=5,
                    window_slide=3, kmeans_k=2, histogram_bins=8,
                    filter_width=3, seed=0, backend=backend)
        base.update(overrides)
        return WorkflowConfig(**base)

    def _run_pair(self, model, backend, **overrides):
        from repro.pipeline import run_workflow
        columnar = run_workflow(
            model, self._config(backend, columnar=True, **overrides))
        scalar = run_workflow(
            model, self._config(backend, columnar=False, **overrides))
        return columnar, scalar

    def _assert_equivalent(self, columnar, scalar):
        assert columnar.n_windows == scalar.n_windows
        for wc, ws in zip(columnar.windows, scalar.windows):
            assert wc.window_index == ws.window_index
            assert wc.start_time == ws.start_time
            assert wc.end_time == ws.end_time
            assert len(wc.cuts) == len(ws.cuts)
            for sc, ss in zip(wc.cuts, ws.cuts):
                assert sc.grid_index == ss.grid_index
                assert sc.minimum == ss.minimum
                assert sc.maximum == ss.maximum
                assert sc.mean == pytest.approx(ss.mean, rel=REL)
                assert sc.variance == pytest.approx(ss.variance, rel=REL)
                assert sc.median == pytest.approx(ss.median, rel=REL)
            # k-means is bit-identical (fixed seed, same RNG consumption)
            assert set(wc.clusters) == set(ws.clusters)
            for obs in wc.clusters:
                assert wc.clusters[obs].assignments == \
                    ws.clusters[obs].assignments
                assert wc.clusters[obs].centroids == \
                    ws.clusters[obs].centroids
            # histograms bin identically (same truncation semantics)
            for obs in wc.histograms:
                assert wc.histograms[obs].counts == \
                    ws.histograms[obs].counts
            for obs in wc.filtered_mean:
                assert wc.filtered_mean[obs] == pytest.approx(
                    ws.filtered_mean[obs], rel=REL)

    def test_threads(self, neurospora_small):
        self._assert_equivalent(
            *self._run_pair(neurospora_small, "threads"))

    def test_sequential(self, neurospora_small):
        self._assert_equivalent(
            *self._run_pair(neurospora_small, "sequential"))

    def test_processes(self, neurospora_small):
        self._assert_equivalent(
            *self._run_pair(neurospora_small, "processes"))

    def test_cluster(self, neurospora_small):
        self._assert_equivalent(
            *self._run_pair(neurospora_small, "cluster"))

    def test_batch_engine_columnar_wire(self, neurospora_small):
        """The batch engine ships columnar QuantumResults; the analysis
        output must match the scalar path bit-for-bit all the same."""
        self._assert_equivalent(*self._run_pair(
            neurospora_small, "threads", engine="batch", batch_size=3))
