"""Filters and oscillation mining."""

import math

import pytest

from repro.analysis.filters import exponential_smoothing, moving_average
from repro.analysis.peaks import (
    ensemble_period,
    estimate_period,
    find_peaks,
    local_periods,
)


class TestMovingAverage:
    def test_constant_unchanged(self):
        assert moving_average([5.0] * 6, 3) == [5.0] * 6

    def test_width_one_identity(self):
        data = [1.0, 9.0, 2.0]
        assert moving_average(data, 1) == data

    def test_centred_window(self):
        out = moving_average([0.0, 3.0, 6.0], 3)
        assert out[1] == pytest.approx(3.0)

    def test_border_truncation(self):
        out = moving_average([0.0, 10.0], 5)
        assert out == [5.0, 5.0]

    def test_same_length(self):
        assert len(moving_average(list(range(17)), 4)) == 17

    def test_width_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestExponentialSmoothing:
    def test_alpha_one_identity(self):
        data = [1.0, 5.0, 2.0]
        assert exponential_smoothing(data, 1.0) == data

    def test_smooths_toward_history(self):
        out = exponential_smoothing([0.0, 10.0], 0.5)
        assert out == [0.0, 5.0]

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            exponential_smoothing([1.0], 0.0)
        with pytest.raises(ValueError):
            exponential_smoothing([1.0], 1.5)


def sine(period, t_end, dt, phase=0.0, amplitude=1.0, offset=2.0):
    times = [i * dt for i in range(int(t_end / dt) + 1)]
    values = [offset + amplitude * math.sin(
        2 * math.pi * (t / period + phase)) for t in times]
    return times, values


class TestPeaks:
    def test_clean_sine_peaks(self):
        times, values = sine(period=10.0, t_end=50.0, dt=0.1)
        peaks = find_peaks(times, values)
        peak_times = [times[i] for i in peaks]
        assert len(peak_times) == 5
        for i, t in enumerate(peak_times):
            assert t == pytest.approx(2.5 + 10.0 * i, abs=0.2)

    def test_prominence_filters_ripples(self):
        times, values = sine(period=10.0, t_end=30.0, dt=0.1)
        rippled = [v + 0.05 * math.sin(40 * t)
                   for t, v in zip(times, values)]
        noisy = find_peaks(times, rippled)
        clean = find_peaks(times, rippled, min_prominence=0.5)
        assert len(clean) < len(noisy)
        assert len(clean) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_peaks([1.0], [1.0, 2.0])

    def test_monotone_has_no_peaks(self):
        times = list(range(10))
        assert find_peaks(times, [float(t) for t in times]) == []


class TestPeriods:
    def test_local_periods_of_sine(self):
        times, values = sine(period=7.5, t_end=60.0, dt=0.05)
        for _mid, period in local_periods(times, values):
            assert period == pytest.approx(7.5, abs=0.1)

    def test_estimate_period(self):
        times, values = sine(period=21.5, t_end=200.0, dt=0.25)
        estimate = estimate_period(times, values)
        assert estimate.mean == pytest.approx(21.5, abs=0.3)
        assert estimate.n_periods >= 7

    def test_discard_transient(self):
        times, values = sine(period=10.0, t_end=100.0, dt=0.1)
        full = estimate_period(times, values)
        late = estimate_period(times, values, discard_transient=50.0)
        assert late.n_periods < full.n_periods

    def test_ensemble_pools_trajectories(self):
        series = [sine(period=10.0, t_end=60.0, dt=0.1, phase=p)
                  for p in (0.0, 0.3, 0.7)]
        estimate = ensemble_period(series)
        assert estimate.mean == pytest.approx(10.0, abs=0.1)
        single = estimate_period(*series[0])
        assert estimate.n_periods > single.n_periods
