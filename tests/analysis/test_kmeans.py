"""k-means clustering."""

import random

import pytest

from repro.analysis.kmeans import kmeans


def blob(center, n, spread, rng):
    return [[c + rng.uniform(-spread, spread) for c in center]
            for _ in range(n)]


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = random.Random(1)
        points = blob([0.0], 20, 0.5, rng) + blob([100.0], 20, 0.5, rng)
        result = kmeans(points, k=2, seed=0)
        left = {result.assignments[i] for i in range(20)}
        right = {result.assignments[i] for i in range(20, 40)}
        assert len(left) == 1 and len(right) == 1 and left != right
        centers = sorted(c[0] for c in result.centroids)
        assert centers[0] == pytest.approx(0.0, abs=1.0)
        assert centers[1] == pytest.approx(100.0, abs=1.0)

    def test_two_dimensional(self):
        rng = random.Random(2)
        points = (blob([0, 0], 15, 1.0, rng)
                  + blob([10, 10], 15, 1.0, rng)
                  + blob([0, 10], 15, 1.0, rng))
        result = kmeans(points, k=3, seed=3)
        assert sorted(result.cluster_sizes()) == [15, 15, 15]

    def test_deterministic_for_seed(self):
        rng = random.Random(3)
        points = blob([0.0], 30, 5.0, rng)
        a = kmeans(points, k=3, seed=42)
        b = kmeans(points, k=3, seed=42)
        assert a.assignments == b.assignments
        assert a.centroids == b.centroids

    def test_k_clamped_to_points(self):
        result = kmeans([[1.0], [2.0]], k=10, seed=0)
        assert result.k == 2

    def test_single_point(self):
        result = kmeans([[7.0]], k=1)
        assert result.centroids == [[7.0]]
        assert result.inertia == 0.0

    def test_identical_points(self):
        result = kmeans([[3.0]] * 10, k=2, seed=0)
        assert result.inertia == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans([], k=1)

    def test_k_positive(self):
        with pytest.raises(ValueError):
            kmeans([[1.0]], k=0)

    def test_inertia_not_worse_than_single_cluster(self):
        rng = random.Random(4)
        points = blob([0.0], 20, 3.0, rng) + blob([50.0], 20, 3.0, rng)
        one = kmeans(points, k=1, seed=0)
        two = kmeans(points, k=2, seed=0)
        assert two.inertia < one.inertia

    def test_assignment_is_nearest_centroid(self):
        rng = random.Random(5)
        points = blob([0.0, 0.0], 25, 4.0, rng) + blob([20.0, 5.0], 25, 4.0, rng)
        result = kmeans(points, k=2, seed=1)
        for point, assigned in zip(points, result.assignments):
            distances = [sum((x - c) ** 2 for x, c in zip(point, centroid))
                         for centroid in result.centroids]
            assert distances[assigned] == min(distances)
