"""k-means clustering."""

import random

import pytest

from repro.analysis.kmeans import kmeans


def blob(center, n, spread, rng):
    return [[c + rng.uniform(-spread, spread) for c in center]
            for _ in range(n)]


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = random.Random(1)
        points = blob([0.0], 20, 0.5, rng) + blob([100.0], 20, 0.5, rng)
        result = kmeans(points, k=2, seed=0)
        left = {result.assignments[i] for i in range(20)}
        right = {result.assignments[i] for i in range(20, 40)}
        assert len(left) == 1 and len(right) == 1 and left != right
        centers = sorted(c[0] for c in result.centroids)
        assert centers[0] == pytest.approx(0.0, abs=1.0)
        assert centers[1] == pytest.approx(100.0, abs=1.0)

    def test_two_dimensional(self):
        rng = random.Random(2)
        points = (blob([0, 0], 15, 1.0, rng)
                  + blob([10, 10], 15, 1.0, rng)
                  + blob([0, 10], 15, 1.0, rng))
        result = kmeans(points, k=3, seed=3)
        assert sorted(result.cluster_sizes()) == [15, 15, 15]

    def test_deterministic_for_seed(self):
        rng = random.Random(3)
        points = blob([0.0], 30, 5.0, rng)
        a = kmeans(points, k=3, seed=42)
        b = kmeans(points, k=3, seed=42)
        assert a.assignments == b.assignments
        assert a.centroids == b.centroids

    def test_k_clamped_to_points(self):
        result = kmeans([[1.0], [2.0]], k=10, seed=0)
        assert result.k == 2

    def test_single_point(self):
        result = kmeans([[7.0]], k=1)
        assert result.centroids == [[7.0]]
        assert result.inertia == 0.0

    def test_identical_points(self):
        result = kmeans([[3.0]] * 10, k=2, seed=0)
        assert result.inertia == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans([], k=1)

    def test_k_positive(self):
        with pytest.raises(ValueError):
            kmeans([[1.0]], k=0)

    def test_inertia_not_worse_than_single_cluster(self):
        rng = random.Random(4)
        points = blob([0.0], 20, 3.0, rng) + blob([50.0], 20, 3.0, rng)
        one = kmeans(points, k=1, seed=0)
        two = kmeans(points, k=2, seed=0)
        assert two.inertia < one.inertia

    def test_assignment_is_nearest_centroid(self):
        rng = random.Random(5)
        points = blob([0.0, 0.0], 25, 4.0, rng) + blob([20.0, 5.0], 25, 4.0, rng)
        result = kmeans(points, k=2, seed=1)
        for point, assigned in zip(points, result.assignments):
            distances = [sum((x - c) ** 2 for x, c in zip(point, centroid))
                         for centroid in result.centroids]
            assert distances[assigned] == min(distances)


class TestVectorizedKMeans:
    """kmeans_array must be bit-identical to the scalar reference."""

    def _assert_identical(self, points, k, seed):
        from repro.analysis.kmeans import kmeans_array
        scalar = kmeans(points, k, seed=seed)
        vector = kmeans_array(points, k, seed=seed)
        assert vector.assignments == scalar.assignments
        assert vector.centroids == scalar.centroids  # exact, not approx
        assert vector.inertia == scalar.inertia
        assert vector.iterations == scalar.iterations

    def test_identical_on_random_blobs_1d(self):
        rng = random.Random(3)
        points = blob([0.0], 30, 2.0, rng) + blob([50.0], 25, 3.0, rng)
        for seed in range(5):
            self._assert_identical(points, 2, seed)

    def test_identical_on_random_blobs_2d(self):
        rng = random.Random(4)
        points = (blob([0, 0], 20, 1.5, rng) + blob([10, 0], 20, 1.5, rng)
                  + blob([5, 9], 20, 1.5, rng))
        for seed in range(5):
            for k in (1, 2, 3, 5):
                self._assert_identical(points, k, seed)

    def test_identical_on_uniform_noise(self):
        rng = random.Random(5)
        points = [[rng.uniform(0, 100), rng.uniform(0, 100)]
                  for _ in range(64)]
        for seed in range(4):
            self._assert_identical(points, 4, seed)

    def test_identical_with_identical_points(self):
        # degenerate seeding path (total distance 0 -> rng.randrange)
        points = [[7.0, 7.0]] * 10
        self._assert_identical(points, 3, 0)

    def test_identical_with_duplicate_heavy_data(self):
        rng = random.Random(6)
        base = [[float(rng.randint(0, 3))] for _ in range(40)]
        for seed in range(4):
            self._assert_identical(base, 3, seed)

    def test_1d_flat_input_equals_tupled_input(self):
        from repro.analysis.kmeans import kmeans_array
        values = [1.0, 2.0, 50.0, 51.0, 52.0, 0.5]
        flat = kmeans_array(values, 2, seed=0)
        tupled = kmeans_array([(v,) for v in values], 2, seed=0)
        assert flat.centroids == tupled.centroids
        assert flat.assignments == tupled.assignments

    def test_k_clamped_and_validation(self):
        from repro.analysis.kmeans import kmeans_array
        result = kmeans_array([[1.0], [2.0]], 5, seed=0)
        assert result.k == 2
        with pytest.raises(ValueError):
            kmeans_array([], 2)
        with pytest.raises(ValueError):
            kmeans_array([[1.0]], 0)
