"""Autocorrelation period mining and population histograms."""

import math

import pytest

from repro.analysis.histogram import histogram
from repro.analysis.periodogram import (
    autocorrelation,
    period_by_autocorrelation,
)


def sine(period, t_end, dt, noise=0.0, seed=0):
    import random
    rng = random.Random(seed)
    times = [i * dt for i in range(int(t_end / dt) + 1)]
    values = [math.sin(2 * math.pi * t / period)
              + (rng.gauss(0, noise) if noise else 0.0) for t in times]
    return times, values


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation([1.0, 5.0, 2.0])[0] == 1.0

    def test_constant_series(self):
        acf = autocorrelation([3.0] * 10)
        assert acf[0] == 1.0
        assert all(v == 0.0 for v in acf[1:])

    def test_alternating_series(self):
        acf = autocorrelation([1.0, -1.0] * 20, max_lag=4)
        assert acf[1] == pytest.approx(-0.975, abs=0.05)
        assert acf[2] == pytest.approx(0.95, abs=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([])

    def test_sine_acf_peaks_at_period(self):
        times, values = sine(10.0, 200.0, 0.5)
        acf = autocorrelation(values)
        lag_of_period = 20  # 10.0 / 0.5
        assert acf[lag_of_period] > 0.9


class TestPeriodByAcf:
    def test_clean_sine(self):
        times, values = sine(21.5, 120.0, 0.25)
        result = period_by_autocorrelation(times, values, min_period=5.0)
        assert result is not None
        assert result.period == pytest.approx(21.5, abs=0.3)

    def test_robust_to_noise(self):
        times, values = sine(10.0, 100.0, 0.25, noise=0.5, seed=4)
        result = period_by_autocorrelation(times, values, min_period=3.0)
        assert result is not None
        assert result.period == pytest.approx(10.0, abs=1.0)

    def test_no_oscillation_returns_none(self):
        import random
        rng = random.Random(0)
        times = [i * 0.5 for i in range(100)]
        values = [rng.gauss(0, 1) for _ in times]
        result = period_by_autocorrelation(times, values, min_period=5.0)
        # white noise: either None or a weak spurious peak
        assert result is None or result.acf_value < 0.5

    def test_agrees_with_peak_counting_on_neurospora(self, neurospora_small):
        """Two independent period estimators must agree on the real
        stochastic circadian trajectory."""
        from repro.analysis.peaks import estimate_period
        from repro.cwc.network import FlatSimulator
        result = FlatSimulator(neurospora_small, seed=6).run(96.0, 0.5)
        m = result.column("M")
        by_acf = period_by_autocorrelation(result.times, m, min_period=10.0)
        by_peaks = estimate_period(result.times, m, smooth_width=5,
                                   min_prominence=4.0)
        assert by_acf is not None
        assert by_acf.period == pytest.approx(by_peaks.mean, rel=0.2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            period_by_autocorrelation([1.0], [1.0, 2.0])

    def test_too_short_returns_none(self):
        assert period_by_autocorrelation([0.0, 1.0], [1.0, 2.0]) is None


class TestHistogram:
    def test_counts_and_range(self):
        h = histogram([0.0, 1.0, 2.0, 3.0, 4.0], n_bins=5)
        assert h.counts == [1, 1, 1, 1, 1]
        assert h.total == 5
        assert h.low == 0.0 and h.high == 4.0

    def test_out_of_range_clamped(self):
        h = histogram([5.0, 15.0], n_bins=2, low=0.0, high=10.0)
        assert sum(h.counts) == 2

    def test_degenerate_data(self):
        h = histogram([7.0, 7.0, 7.0], n_bins=4)
        assert h.total == 3

    def test_bin_edges_and_centers(self):
        h = histogram([0.0, 10.0], n_bins=2)
        assert h.bin_edges() == [0.0, 5.0, 10.0]
        assert h.bin_centers() == [2.5, 7.5]

    def test_mode_detection_bimodal(self):
        data = [1.0] * 20 + [9.0] * 15
        h = histogram(data, n_bins=10, low=0.0, high=10.0)
        assert len(h.mode_bins()) == 2

    def test_mode_detection_unimodal(self):
        import random
        rng = random.Random(1)
        data = [rng.gauss(5, 1) for _ in range(200)]
        h = histogram(data, n_bins=10, low=0.0, high=10.0)
        assert len(h.mode_bins(threshold_fraction=0.15)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([], n_bins=3)
        with pytest.raises(ValueError):
            histogram([1.0], n_bins=0)


class TestHistogramInWorkflow:
    def test_stat_engine_produces_histograms(self, toggle_small):
        from repro.pipeline import WorkflowConfig, run_workflow
        cfg = WorkflowConfig(
            n_simulations=10, t_end=20.0, sample_every=1.0, quantum=5.0,
            n_sim_workers=3, window_size=21, histogram_bins=8, seed=2)
        result = run_workflow(toggle_small, cfg)
        final = result.windows[-1]
        assert set(final.histograms) == {0, 1}
        assert final.histograms[0].total == 10
