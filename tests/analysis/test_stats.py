"""Streaming statistics."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import CutStatistics, OnlineStats, cut_statistics, quantile
from repro.sim.trajectory import Cut

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestOnlineStats:
    def test_empty(self):
        acc = OnlineStats()
        assert acc.n == 0
        assert math.isnan(acc.mean)
        assert math.isnan(acc.variance)

    def test_single_value(self):
        acc = OnlineStats().extend([5.0])
        assert acc.mean == 5.0
        assert acc.variance == 0.0
        assert acc.min == acc.max == 5.0

    def test_matches_statistics_module(self):
        data = [1.5, 2.5, -3.0, 4.25, 0.0, 10.0]
        acc = OnlineStats().extend(data)
        assert acc.mean == pytest.approx(statistics.mean(data))
        assert acc.variance == pytest.approx(statistics.variance(data))
        assert acc.std == pytest.approx(statistics.stdev(data))

    @given(st.lists(floats, min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_welford_property(self, data):
        acc = OnlineStats().extend(data)
        assert acc.mean == pytest.approx(statistics.mean(data),
                                         rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(statistics.variance(data),
                                             rel=1e-6, abs=1e-6)
        assert acc.min == min(data) and acc.max == max(data)

    @given(st.lists(floats, min_size=1, max_size=50),
           st.lists(floats, min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_merge_equals_concatenation(self, a, b):
        merged = OnlineStats().extend(a).merge(OnlineStats().extend(b))
        direct = OnlineStats().extend(a + b)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance,
                                                rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        acc = OnlineStats().extend([1.0, 2.0])
        acc.merge(OnlineStats())
        assert acc.n == 2
        empty = OnlineStats()
        empty.merge(OnlineStats().extend([1.0, 2.0]))
        assert empty.mean == 1.5


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        data = [3, 7, 9]
        assert quantile(data, 0.0) == 3
        assert quantile(data, 1.0) == 9

    def test_empty_is_nan(self):
        assert math.isnan(quantile([], 0.5))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)


class TestCutStatistics:
    def test_per_observable_summary(self):
        cut = Cut(grid_index=3, time=1.5,
                  values=[(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)])
        stats = cut_statistics(cut)
        assert isinstance(stats, CutStatistics)
        assert stats.grid_index == 3 and stats.time == 1.5
        assert stats.n_trajectories == 3
        assert stats.mean == (2.0, 20.0)
        assert stats.minimum == (1.0, 10.0)
        assert stats.maximum == (3.0, 30.0)
        assert stats.median == (2.0, 20.0)
        assert stats.variance[0] == pytest.approx(1.0)
