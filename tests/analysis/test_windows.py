"""Sliding-window generation.

Parametrised over the columnar ring-buffer :class:`SlidingWindowNode`
and the scalar oracle :class:`ScalarSlidingWindowNode`: both must emit
the same window sequence for any stream.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.windows import (ScalarSlidingWindowNode,
                                    SlidingWindowNode, Window)
from repro.sim.trajectory import Cut, CutBlock

NODES = (SlidingWindowNode, ScalarSlidingWindowNode)


class _Capture:
    def __init__(self, node):
        self.items = []
        node._outbox = self

    def send(self, item):
        self.items.append(item)


def cuts(n):
    return [Cut(grid_index=g, time=float(g), values=[(float(g),)])
            for g in range(n)]


def feed(node, n):
    out = _Capture(node)
    for cut in cuts(n):
        node.svc(cut)
    node.svc_end()
    return out.items


@pytest.mark.parametrize("node_cls", NODES)
class TestTumblingWindows:
    def test_exact_multiple(self, node_cls):
        windows = feed(node_cls(size=5), 10)
        assert [len(w) for w in windows] == [5, 5]
        assert [w.index for w in windows] == [0, 1]

    def test_partial_tail_emitted(self, node_cls):
        windows = feed(node_cls(size=5), 12)
        assert [len(w) for w in windows] == [5, 5, 2]

    def test_partial_tail_suppressed(self, node_cls):
        windows = feed(node_cls(size=5, emit_partial_tail=False), 12)
        assert [len(w) for w in windows] == [5, 5]

    def test_windows_cover_stream_in_order(self, node_cls):
        windows = feed(node_cls(size=4), 10)
        seen = [c.grid_index for w in windows for c in w.cuts]
        assert seen == list(range(10))

    def test_fewer_cuts_than_window(self, node_cls):
        windows = feed(node_cls(size=100), 3)
        assert len(windows) == 1 and len(windows[0]) == 3

    def test_empty_stream(self, node_cls):
        assert feed(node_cls(size=5), 0) == []


@pytest.mark.parametrize("node_cls", NODES)
class TestOverlappingWindows:
    def test_slide_smaller_than_size(self, node_cls):
        windows = feed(node_cls(size=4, slide=2), 8)
        starts = [w.cuts[0].grid_index for w in windows]
        assert starts[:3] == [0, 2, 4]
        assert all(len(w) == 4 for w in windows[:3])

    def test_overlap_shares_cuts(self, node_cls):
        windows = feed(node_cls(size=4, slide=2), 6)
        assert [c.grid_index for c in windows[0].cuts] == [0, 1, 2, 3]
        assert [c.grid_index for c in windows[1].cuts] == [2, 3, 4, 5]

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 40))
    @settings(max_examples=60)
    def test_every_cut_appears(self, node_cls, size, slide_offset, n):
        slide = min(size, 1 + slide_offset % size)
        node = node_cls(size=size, slide=slide)
        windows = feed(node, n)
        covered = {c.grid_index for w in windows for c in w.cuts}
        assert covered == set(range(n))
        # window indices are consecutive
        assert [w.index for w in windows] == list(range(len(windows)))

    def test_large_slide_long_stream(self, node_cls):
        """Regression for the per-slide pop loop: a large slide over a
        long stream must still produce exactly the right windows (and in
        the columnar node the ring must compact correctly many times)."""
        size, slide, n = 500, 499, 5000
        windows = feed(node_cls(size=size, slide=slide), n)
        expected_full = (n - size) // slide + 1
        assert [len(w) for w in windows[:expected_full]] == (
            [size] * expected_full)
        starts = [w.cuts[0].grid_index for w in windows[:expected_full]]
        assert starts == [i * slide for i in range(expected_full)]
        covered = {c.grid_index for w in windows for c in w.cuts}
        assert covered == set(range(n))


class TestColumnarScalarEquivalence:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 60),
           st.integers(1, 7))
    @settings(max_examples=40)
    def test_same_windows_any_blocking(self, size, slide_offset, n,
                                       block_len):
        """Feeding the same stream -- as single cuts to the oracle and as
        arbitrary CutBlock batches to the ring -- yields identical
        windows."""
        slide = min(size, 1 + slide_offset % size)
        stream = cuts(n)
        scalar = ScalarSlidingWindowNode(size=size, slide=slide)
        columnar = SlidingWindowNode(size=size, slide=slide)
        out_s = _Capture(scalar)
        out_c = _Capture(columnar)
        for cut in stream:
            scalar.svc(cut)
        scalar.svc_end()
        import numpy as np
        start = 0
        while start < n:
            chunk = stream[start:start + block_len]
            columnar.svc(CutBlock(
                start, np.array([c.time for c in chunk]),
                np.stack([c.data for c in chunk])))
            start += len(chunk)
        columnar.svc_end()
        assert len(out_s.items) == len(out_c.items)
        for ws, wc in zip(out_s.items, out_c.items):
            assert ws.index == wc.index
            assert [c.grid_index for c in ws.cuts] == \
                [c.grid_index for c in wc.cuts]
            assert [c.values for c in ws.cuts] == \
                [c.values for c in wc.cuts]

    def test_ring_precomputes_stats(self):
        node = SlidingWindowNode(size=4, slide=2)
        windows = feed(node, 8)
        for window in windows:
            assert window.cut_stats is not None
            assert len(window.cut_stats) == len(window)
            for stat, cut in zip(window.cut_stats, window.cuts):
                assert stat.grid_index == cut.grid_index
                assert stat.mean == (float(cut.grid_index),)

    def test_type_check(self):
        with pytest.raises(TypeError):
            SlidingWindowNode(size=2).svc("nope")
        with pytest.raises(TypeError):
            ScalarSlidingWindowNode(size=2).svc("nope")


class TestWindowObject:
    def test_time_bounds(self):
        window = Window(0, cuts(4))
        assert window.start_time == 0.0
        assert window.end_time == 3.0

    def test_trajectory_matrix(self):
        data = [Cut(grid_index=g, time=float(g),
                    values=[(g + 100.0,), (g + 200.0,)]) for g in range(3)]
        window = Window(0, data)
        matrix = window.trajectory_matrix(0)
        assert matrix == [[100.0, 101.0, 102.0], [200.0, 201.0, 202.0]]


@pytest.mark.parametrize("node_cls", NODES)
class TestValidation:
    def test_size_positive(self, node_cls):
        with pytest.raises(ValueError):
            node_cls(size=0)

    def test_slide_bounds(self, node_cls):
        with pytest.raises(ValueError):
            node_cls(size=3, slide=4)
        with pytest.raises(ValueError):
            node_cls(size=3, slide=0)
