"""Sliding-window generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.windows import SlidingWindowNode, Window
from repro.sim.trajectory import Cut


class _Capture:
    def __init__(self, node):
        self.items = []
        node._outbox = self

    def send(self, item):
        self.items.append(item)


def cuts(n):
    return [Cut(grid_index=g, time=float(g), values=[(float(g),)])
            for g in range(n)]


def feed(node, n):
    out = _Capture(node)
    for cut in cuts(n):
        node.svc(cut)
    node.svc_end()
    return out.items


class TestTumblingWindows:
    def test_exact_multiple(self):
        windows = feed(SlidingWindowNode(size=5), 10)
        assert [len(w) for w in windows] == [5, 5]
        assert [w.index for w in windows] == [0, 1]

    def test_partial_tail_emitted(self):
        windows = feed(SlidingWindowNode(size=5), 12)
        assert [len(w) for w in windows] == [5, 5, 2]

    def test_partial_tail_suppressed(self):
        windows = feed(SlidingWindowNode(size=5, emit_partial_tail=False), 12)
        assert [len(w) for w in windows] == [5, 5]

    def test_windows_cover_stream_in_order(self):
        windows = feed(SlidingWindowNode(size=4), 10)
        seen = [c.grid_index for w in windows for c in w.cuts]
        assert seen == list(range(10))

    def test_fewer_cuts_than_window(self):
        windows = feed(SlidingWindowNode(size=100), 3)
        assert len(windows) == 1 and len(windows[0]) == 3

    def test_empty_stream(self):
        assert feed(SlidingWindowNode(size=5), 0) == []


class TestOverlappingWindows:
    def test_slide_smaller_than_size(self):
        windows = feed(SlidingWindowNode(size=4, slide=2), 8)
        starts = [w.cuts[0].grid_index for w in windows]
        assert starts[:3] == [0, 2, 4]
        assert all(len(w) == 4 for w in windows[:3])

    def test_overlap_shares_cuts(self):
        windows = feed(SlidingWindowNode(size=4, slide=2), 6)
        assert [c.grid_index for c in windows[0].cuts] == [0, 1, 2, 3]
        assert [c.grid_index for c in windows[1].cuts] == [2, 3, 4, 5]

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 40))
    @settings(max_examples=60)
    def test_every_cut_appears(self, size, slide_offset, n):
        slide = min(size, 1 + slide_offset % size)
        node = SlidingWindowNode(size=size, slide=slide)
        windows = feed(node, n)
        covered = {c.grid_index for w in windows for c in w.cuts}
        assert covered == set(range(n))
        # window indices are consecutive
        assert [w.index for w in windows] == list(range(len(windows)))


class TestWindowObject:
    def test_time_bounds(self):
        window = Window(0, cuts(4))
        assert window.start_time == 0.0
        assert window.end_time == 3.0

    def test_trajectory_matrix(self):
        data = [Cut(grid_index=g, time=float(g),
                    values=[(g + 100.0,), (g + 200.0,)]) for g in range(3)]
        window = Window(0, data)
        matrix = window.trajectory_matrix(0)
        assert matrix == [[100.0, 101.0, 102.0], [200.0, 201.0, 202.0]]


class TestValidation:
    def test_size_positive(self):
        with pytest.raises(ValueError):
            SlidingWindowNode(size=0)

    def test_slide_bounds(self):
        with pytest.raises(ValueError):
            SlidingWindowNode(size=3, slide=4)
        with pytest.raises(ValueError):
            SlidingWindowNode(size=3, slide=0)
