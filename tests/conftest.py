"""Shared fixtures: small, fast model instances."""

from __future__ import annotations

import pytest

from repro.cwc import Model, Rule
from repro.models import (
    lotka_volterra_network,
    mm_enzyme_network,
    neurospora_cwc_model,
    neurospora_network,
    toggle_switch_network,
)


@pytest.fixture
def dimer_model() -> Model:
    """A two-rule mass-action model with a conservation law
    (a + 2*d == 100)."""
    return Model(
        "dimer", term="100*a",
        rules=[
            Rule.flat("bind", "a a", "d", 0.001),
            Rule.flat("unbind", "d", "a a", 0.1),
        ],
        observables=["a", "d"])


@pytest.fixture
def neurospora_small():
    """The Neurospora network at a small system size (fast SSA)."""
    return neurospora_network(omega=20)


@pytest.fixture
def neurospora_cwc_small():
    return neurospora_cwc_model(omega=20)


@pytest.fixture
def lotka_small():
    return lotka_volterra_network(prey0=100, predator0=100,
                                  birth=1.0, predation=0.01, death=1.0)


@pytest.fixture
def toggle_small():
    return toggle_switch_network(omega=10)


@pytest.fixture
def enzyme_small():
    return mm_enzyme_network(enzyme0=10, substrate0=50)
