"""Batch SSA engine: compiled-network equivalence and distributional tests."""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.cwc.batch import BatchFlatSimulator, CompiledNetwork, batch_simulator
from repro.cwc.network import FlatSimulator, Reaction, ReactionNetwork
from repro.models import (
    lotka_volterra_network,
    neurospora_network,
    toggle_switch_network,
)


def _random_states(network, rng, n):
    """Random count matrices roughly around the initial state."""
    initial = np.array([network.initial.get(s, 0) for s in network.species])
    X = rng.integers(0, np.maximum(initial * 2, 10) + 1,
                     size=(n, len(network.species)))
    return X.astype(np.int64)


class TestCompiledNetwork:
    @pytest.mark.parametrize("maker", [
        lambda: neurospora_network(omega=20),
        toggle_switch_network,
        lotka_volterra_network,
    ])
    def test_propensities_match_scalar(self, maker):
        """The vectorized propensity matrix equals per-reaction scalar
        evaluation on random states (mass-action and functional rates)."""
        network = maker()
        compiled = CompiledNetwork(network)
        rng = np.random.default_rng(0)
        X = _random_states(network, rng, 64)
        A = compiled.propensities(X)
        for i in range(X.shape[0]):
            counts = {s: int(X[i, compiled.species_index[s]])
                      for s in network.species}
            expected = [r.propensity(counts) for r in network.reactions]
            assert np.allclose(A[i], expected), (i, A[i], expected)

    def test_stoichiometry_matches_apply(self):
        network = neurospora_network(omega=20)
        compiled = CompiledNetwork(network)
        base = {s: 50 for s in network.species}
        for j, reaction in enumerate(network.reactions):
            counts = dict(base)
            reaction.apply(counts)
            delta = np.array([counts[s] - base[s] for s in network.species])
            assert (compiled.stoich[j] == delta).all()

    def test_initial_and_observables(self):
        network = toggle_switch_network()
        compiled = CompiledNetwork(network)
        assert {s: int(v) for s, v in
                zip(network.species, compiled.initial)} \
            == {s: network.initial.get(s, 0) for s in network.species}
        names = [network.species[c] for c in compiled.observable_columns]
        assert tuple(names) == network.observables


class TestDeterministicInvariants:
    """A single irreversible reaction makes every SSA invariant exact."""

    def _network(self, a0=17):
        return ReactionNetwork(
            "drain", {"A": a0, "B": 0},
            [Reaction.make("decay", {"A": 1}, {"B": 1}, 1.0)],
            observables=["A", "B"])

    def test_fires_exactly_a0_times(self):
        a0 = 17
        sim = BatchFlatSimulator(self._network(a0), 32, seed=1)
        sim.advance(1e9)
        assert (sim.steps == a0).all()
        assert (sim.counts[:, 0] == 0).all()
        assert (sim.counts[:, 1] == a0).all()
        assert sim.exhausted.all()

    def test_exhausted_clamp_to_target(self):
        sim = BatchFlatSimulator(self._network(3), 8, seed=2)
        sim.advance(1e9)
        t_after = sim.times.copy()
        sim.advance(5.0)
        assert np.allclose(sim.times, t_after + 5.0)
        assert (sim.steps == 3).all()

    def test_scalar_engine_same_invariants(self):
        scalar = FlatSimulator(self._network(17), seed=3)
        scalar.advance(1e9)
        assert scalar.steps == 17
        assert scalar.counts["A"] == 0 and scalar.counts["B"] == 17

    def test_exponential_decay_mean(self):
        """Unit-rate mass-action decay: each molecule lives Exp(1), so
        E[A(t)] = A0 * exp(-t)."""
        a0, t = 20, 1.0
        sim = BatchFlatSimulator(self._network(a0), 4096, seed=4)
        sim.advance(t)
        expected = a0 * np.exp(-t)
        assert sim.counts[:, 0].mean() == pytest.approx(expected, rel=0.05)


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("maker", [
        lambda: neurospora_network(omega=10),
        toggle_switch_network,
    ])
    def test_terminal_distribution_ks(self, maker):
        """Kolmogorov-Smirnov: terminal observable distributions of the
        batch engine and the scalar FlatSimulator are indistinguishable
        (fixed seeds; p-value threshold far below any plausible break)."""
        network = maker()
        n, t_end = 200, 2.0
        batch = BatchFlatSimulator(network, n, seed=7)
        batch.advance(t_end)
        batch_terminal = batch.observe_all()
        scalar_terminal = []
        for s in range(n):
            sim = FlatSimulator(network, seed=10_000 + s)
            sim.advance(t_end)
            scalar_terminal.append(sim.observe())
        scalar_terminal = np.array(scalar_terminal)
        for k in range(batch_terminal.shape[1]):
            stat = ks_2samp(batch_terminal[:, k], scalar_terminal[:, k])
            assert stat.pvalue > 0.01, (network.observables[k], stat)

    def test_mean_step_counts_agree(self):
        network = neurospora_network(omega=10)
        n, t_end = 200, 2.0
        batch = BatchFlatSimulator(network, n, seed=8)
        batch.advance(t_end)
        scalar_steps = []
        for s in range(n):
            sim = FlatSimulator(network, seed=20_000 + s)
            sim.advance(t_end)
            scalar_steps.append(sim.steps)
        assert batch.steps.mean() == pytest.approx(
            np.mean(scalar_steps), rel=0.10)

    def test_run_all_matches_scalar_grid(self):
        """run_all produces the same sampling grid and plain-float samples
        as FlatSimulator.run."""
        network = neurospora_network(omega=10)
        results = batch_simulator(network, 3, seed=9).run_all(3.0, 0.5)
        reference = FlatSimulator(network, seed=9).run(3.0, 0.5)
        assert len(results) == 3
        for result in results:
            assert result.times == reference.times
            assert all(isinstance(v, float)
                       for sample in result.samples for v in sample)


class TestBatchApi:
    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BatchFlatSimulator(neurospora_network(omega=10), 0)

    def test_per_trajectory_targets(self):
        network = neurospora_network(omega=10)
        sim = BatchFlatSimulator(network, 4, seed=11)
        targets = np.array([0.5, 1.0, 1.5, 2.0])
        sim.advance_to(targets)
        assert np.allclose(sim.times, targets)

    def test_state_view_protocol(self):
        network = neurospora_network(omega=10)
        sim = BatchFlatSimulator(network, 2, seed=12)
        view = sim.state_view(0)
        species = network.species[0]
        assert view[species] == view.count(species) \
            == int(sim.counts[0, sim.compiled.species_index[species]])

    def test_reproducible(self):
        network = toggle_switch_network()

        def final(seed):
            sim = BatchFlatSimulator(network, 16, seed=seed)
            sim.advance(2.0)
            return sim.counts.copy()

        assert (final(21) == final(21)).all()
        assert not (final(21) == final(22)).all()
