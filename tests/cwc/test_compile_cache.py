"""The process-level compiled-network cache."""

import pytest

from repro.cwc.batch import (CompiledNetwork, clear_network_cache,
                             compile_network, network_cache_stats)
from repro.cwc.network import Reaction, ReactionNetwork
from repro.models import neurospora_network


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_network_cache()
    yield
    clear_network_cache()


def opaque_network():
    """A network whose rate law is an arbitrary callable -- no content
    hash, so it must never be cached."""
    return ReactionNetwork(
        "opaque", {"a": 10},
        [Reaction.make("decay", {"a": 1}, {}, lambda X: X[:, 0] * 0.1)],
        observables=("a",))


class TestMemoization:
    def test_identical_content_shares_one_compilation(self):
        first = compile_network(neurospora_network(omega=20))
        second = compile_network(neurospora_network(omega=20))
        assert second is first
        stats = network_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_different_content_compiles_fresh(self):
        base = compile_network(neurospora_network(omega=20))
        other = compile_network(neurospora_network(omega=40))
        rates = compile_network(
            neurospora_network(omega=20).with_rates({"translation": 0.9}))
        assert other is not base and rates is not base
        assert network_cache_stats()["misses"] == 3

    def test_compiled_input_passes_through(self):
        compiled = CompiledNetwork(neurospora_network(omega=20))
        assert compile_network(compiled) is compiled
        assert network_cache_stats() == {
            "hits": 0, "misses": 0, "uncacheable": 0}

    def test_opaque_rate_laws_are_uncacheable(self):
        first = compile_network(opaque_network())
        second = compile_network(opaque_network())
        assert second is not first
        stats = network_cache_stats()
        assert stats["uncacheable"] == 2
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_clear_resets_everything(self):
        compile_network(neurospora_network(omega=20))
        clear_network_cache()
        assert network_cache_stats() == {
            "hits": 0, "misses": 0, "uncacheable": 0}
        compile_network(neurospora_network(omega=20))
        assert network_cache_stats()["misses"] == 1


class TestFingerprint:
    def test_stable_across_instances(self):
        assert neurospora_network(omega=20).fingerprint() == \
            neurospora_network(omega=20).fingerprint()

    def test_sensitive_to_rates(self):
        base = neurospora_network(omega=20)
        assert base.fingerprint() != \
            base.with_rates({"translation": 0.9}).fingerprint()

    def test_opaque_callables_have_no_fingerprint(self):
        assert opaque_network().fingerprint() is None


class TestCapacity:
    def test_fifo_eviction_keeps_cache_bounded(self, monkeypatch):
        import repro.cwc.batch as batch_mod
        monkeypatch.setattr(batch_mod, "_COMPILE_CACHE_CAP", 2)
        nets = [neurospora_network(omega=w) for w in (10, 20, 30)]
        for net in nets:
            compile_network(net)
        assert len(batch_mod._compile_cache) == 2
        # oldest entry evicted: recompiling omega=10 misses again
        compile_network(neurospora_network(omega=10))
        assert network_cache_stats()["misses"] == 4
