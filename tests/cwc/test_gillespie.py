"""The CWC Gillespie engine: exactness, determinism, caching, rewriting."""

import math

import pytest

from repro.cwc import CWCSimulator, Model, Rule, parse_model
from repro.cwc.multiset import Multiset
from repro.cwc.rule import CompartmentPattern, CompartmentRHS, Pattern, RHS


class TestDeterminism:
    def test_same_seed_same_trajectory(self, dimer_model):
        first = CWCSimulator(dimer_model, seed=11).run(5.0, 0.5)
        second = CWCSimulator(dimer_model, seed=11).run(5.0, 0.5)
        assert first.samples == second.samples
        assert first.steps == second.steps

    def test_different_seeds_differ(self, dimer_model):
        first = CWCSimulator(dimer_model, seed=1).run(5.0, 0.5)
        second = CWCSimulator(dimer_model, seed=2).run(5.0, 0.5)
        assert first.samples != second.samples

    def test_cache_does_not_change_trajectory(self, dimer_model):
        cached = CWCSimulator(dimer_model, seed=3).run(10.0, 1.0)
        uncached = CWCSimulator(dimer_model, seed=3,
                                cache_propensities=False).run(10.0, 1.0)
        assert cached.samples == uncached.samples

    def test_cache_correct_on_compartment_model(self, neurospora_cwc_small):
        """Regression test: a flat rule firing *inside* a compartment
        changes the propensity of parent-context rules whose compartment
        patterns read that content (e.g. nuclear transcription produces
        Mn, which the cell-level export rule matches).  The cache must
        refresh the parent context too."""
        cached = CWCSimulator(neurospora_cwc_small, seed=7).run(3.0, 0.5)
        uncached = CWCSimulator(neurospora_cwc_small, seed=7,
                                cache_propensities=False).run(3.0, 0.5)
        assert cached.samples == uncached.samples


class TestInvariants:
    def test_conservation_law(self, dimer_model):
        result = CWCSimulator(dimer_model, seed=5).run(20.0, 1.0)
        for a, d in result.samples:
            assert a + 2 * d == 100

    def test_model_term_not_mutated(self, dimer_model):
        simulator = CWCSimulator(dimer_model, seed=0)
        simulator.run(5.0, 1.0)
        assert dimer_model.term.atoms.count("a") == 100

    def test_time_is_monotone(self, dimer_model):
        simulator = CWCSimulator(dimer_model, seed=0)
        last = 0.0
        for _ in range(50):
            simulator.step()
            assert simulator.time >= last
            last = simulator.time


class TestStepping:
    def test_step_respects_t_max(self, dimer_model):
        simulator = CWCSimulator(dimer_model, seed=0)
        fired = simulator.step(t_max=1e-12)
        assert simulator.time <= 1e-12 or fired

    def test_exhausted_system_stops(self):
        model = Model("decay", term="3*a",
                      rules=[Rule.flat("die", "a", "", 10.0)],
                      observables=["a"])
        simulator = CWCSimulator(model, seed=1)
        for _ in range(3):
            assert simulator.step()
        assert not simulator.step()  # nothing left to react
        assert simulator.steps == 3

    def test_exhausted_advance_moves_clock(self):
        model = Model("decay", term="1*a",
                      rules=[Rule.flat("die", "a", "", 100.0)],
                      observables=["a"])
        simulator = CWCSimulator(model, seed=1)
        simulator.advance(50.0)
        assert simulator.time == pytest.approx(50.0)

    def test_advance_equals_run_grid(self, dimer_model):
        """advance() in small slices visits the same state sequence as
        run() with the same seed (quantum stepping is exact)."""
        whole = CWCSimulator(dimer_model, seed=9).run(4.0, 1.0)
        sliced = CWCSimulator(dimer_model, seed=9)
        samples = [sliced.observe()]
        for _ in range(4):
            sliced.advance(1.0)
            samples.append(sliced.observe())
        assert samples == whole.samples

    def test_run_sampling_grid(self, dimer_model):
        result = CWCSimulator(dimer_model, seed=0).run(3.0, 0.5)
        assert result.times == [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        assert result.observable_names == ("a", "d")

    def test_result_column(self, dimer_model):
        result = CWCSimulator(dimer_model, seed=0).run(2.0, 1.0)
        assert result.column("a") == [s[0] for s in result.samples]
        with pytest.raises(ValueError):
            result.column("nope")


class TestCompartmentRewriting:
    def test_transport_moves_mass(self):
        model = parse_model("""
            model transport
            term: 20*a (m | ):cell
            rule enter @ 5.0 : a $(m | ):cell => $1(m | a)
            observable a_top = a in top
            observable a_cell = a in cell
        """)
        simulator = CWCSimulator(model, seed=4)
        result = simulator.run(100.0, 100.0)
        a_top, a_cell = result.samples[-1]
        assert a_top + a_cell == 20
        assert a_cell == 20  # irreversible: everything ends inside

    def test_compartment_creation(self):
        model = parse_model("""
            model budding
            term: 3*seed
            rule bud @ 1.0 : seed => (m | cargo):vesicle
            observable seed = seed
            observable cargo = cargo in vesicle
        """)
        simulator = CWCSimulator(model, seed=2)
        result = simulator.run(100.0, 100.0)
        assert result.samples[-1] == (0, 3)
        assert len(simulator.term.compartments) == 3

    def test_compartment_deletion_unreferenced(self):
        model = parse_model("""
            model destroy
            term: (m | 5*x):cell trigger
            rule kill @ 1.0 : trigger $( | ):cell =>
            observable x = x
        """)
        simulator = CWCSimulator(model, seed=3)
        simulator.run(50.0, 50.0)
        # the matched compartment was consumed, its content lost
        assert simulator.term.compartments == []
        assert simulator.observe() == (0,)

    def test_dissolve_preserves_content(self):
        model = parse_model("""
            model burst
            term: (w | 7*x):vesicle trigger
            rule pop @ 1.0 : trigger $( | ):vesicle => dissolve $1
            observable x_top = x in top
            observable w_top = w in top
        """)
        simulator = CWCSimulator(model, seed=3)
        result = simulator.run(50.0, 50.0)
        assert result.samples[-1] == (7, 1)

    def test_relabel(self):
        model = parse_model("""
            model mature
            term: (m | ):early go
            rule mature @ 2.0 : go $( | ):early => $1( | ):late
            observable go = go
        """)
        simulator = CWCSimulator(model, seed=1)
        simulator.run(50.0, 50.0)
        assert simulator.term.compartments[0].label == "late"


class TestFunctionalRates:
    def test_hill_repression_shuts_down(self):
        from repro.cwc.rates import HillRepression
        model = Model(
            "repress", term="50*r",
            rules=[Rule("make", "top", Pattern(),
                        RHS(atoms=Multiset({"p": 1})),
                        HillRepression(v=10.0, K=1.0, n=4, species="r",
                                       omega=1.0))],
            observables=["p", "r"])
        simulator = CWCSimulator(model, seed=0)
        simulator.advance(10.0)
        # with 50 repressors the Hill factor is ~(1/50)^4: ~0 production
        assert simulator.observe()[0] == 0

    def test_rate_cache_refresh_on_local_change(self):
        """A functional rate must be re-evaluated after the context
        changes (regression test for the propensity cache)."""
        from repro.cwc.rates import Linear
        model = Model(
            "autocat", term="1*a",
            rules=[Rule("grow", "top", Pattern(),
                        RHS(atoms=Multiset({"a": 1})),
                        Linear(1.0, "a"))],
            observables=["a"])
        simulator = CWCSimulator(model, seed=1)
        simulator.advance(3.0)
        # pure birth process with rate n grows fast; with a stale cache
        # it would grow linearly (rate 1 forever)
        assert simulator.observe()[0] > 5
