"""Conservation-law analysis."""

import pytest

from repro.cwc import (
    FlatSimulator,
    Reaction,
    ReactionNetwork,
    conservation_laws,
    verify_conservation,
)
from repro.cwc.invariants import evaluate_law, stoichiometry_matrix
from repro.models import (
    lotka_volterra_network,
    mm_enzyme_network,
    neurospora_network,
)


class TestStoichiometryMatrix:
    def test_shape_and_entries(self):
        net = ReactionNetwork("iso", {"A": 1}, [
            Reaction.make("f", "A", "B", 1.0)])
        matrix, species = stoichiometry_matrix(net)
        assert species == ("A", "B")
        assert matrix == [[-1], [1]]

    def test_catalyst_has_zero_net(self):
        net = ReactionNetwork("cat", {"E": 1, "S": 1}, [
            Reaction.make("r", "E S", "E P", 1.0)])
        matrix, species = stoichiometry_matrix(net)
        e_row = matrix[species.index("E")]
        assert e_row == [0]


class TestConservationLaws:
    def test_isomerisation(self):
        net = ReactionNetwork("iso", {"A": 10}, [
            Reaction.make("f", "A", "B", 1.0),
            Reaction.make("b", "B", "A", 1.0)])
        laws = conservation_laws(net)
        assert {"A": 1, "B": 1} in laws

    def test_dimerisation_weights(self, dimer_model):
        from repro.cwc import ReactionNetwork as RN
        net = RN.from_model(dimer_model)
        laws = conservation_laws(net)
        assert laws == [{"a": 1, "d": 2}]

    def test_enzyme_two_laws(self):
        laws = conservation_laws(mm_enzyme_network())
        assert len(laws) == 2
        as_sets = [frozenset(law.items()) for law in laws]
        assert frozenset({"E": 1, "ES": 1}.items()) in as_sets

    def test_open_system_has_no_laws(self):
        # birth-death: nothing conserved
        net = ReactionNetwork("bd", {"X": 5}, [
            Reaction.make("birth", "", "X", 1.0),
            Reaction.make("death", "X", "", 1.0)])
        assert conservation_laws(net) == []

    def test_lotka_volterra_has_no_laws(self):
        assert conservation_laws(lotka_volterra_network()) == []

    def test_neurospora_has_no_laws(self):
        # open system: transcription and degradation break conservation
        assert conservation_laws(neurospora_network(omega=10)) == []

    def test_law_value_constant_along_trajectory(self):
        net = mm_enzyme_network(enzyme0=20, substrate0=100)
        laws = conservation_laws(net)
        simulator = FlatSimulator(net, seed=1)
        names = net.observables
        initial = {s: simulator.counts[s] for s in names}
        references = [evaluate_law(law, initial) for law in laws]
        for _ in range(200):
            if not simulator.step():
                break
            counts = {s: simulator.counts[s] for s in names}
            for law, reference in zip(laws, references):
                assert evaluate_law(law, counts) == reference


class TestVerifyConservation:
    def test_accepts_valid_trajectory(self):
        net = mm_enzyme_network(enzyme0=10, substrate0=50)
        result = FlatSimulator(net, seed=0).run(10.0, 1.0)
        assert verify_conservation(net, result.samples)

    def test_rejects_corrupted_trajectory(self):
        net = mm_enzyme_network(enzyme0=10, substrate0=50)
        result = FlatSimulator(net, seed=0).run(5.0, 1.0)
        corrupted = [tuple(v + 1 for v in row) for row in result.samples[:1]] \
            + result.samples[1:]
        with pytest.raises(ValueError, match="violated"):
            verify_conservation(net, corrupted)

    def test_partial_observables_skip_unverifiable_laws(self):
        net = mm_enzyme_network(enzyme0=10, substrate0=50)
        # only P observed: no law is fully expressible, nothing to check
        samples = [(0.0,), (5.0,), (50.0,)]
        assert verify_conservation(net, samples, observables=("P",))
