"""Kernel equivalence: every backend must reproduce the numpy oracle.

The numba backend's bit-identity pledge rests on two facts checked
here: (1) the plain-Python loops numba compiles perform the *same*
IEEE-754 operations in the same order as the vectorised oracle
(testable without numba -- Python floats are the same doubles), and
(2) with numba installed, the jitted versions drive whole trajectories
to byte-for-byte the same states for the same seeds.  The numba and
cupy legs skip cleanly where the packages are absent (this is the
default local environment; CI has a dedicated numba matrix leg).
"""

import pickle

import numpy as np
import pytest

from repro.cwc.batch import BatchFlatSimulator, CompiledNetwork
from repro.cwc.kernels import (
    KernelUnavailable,
    MassActionPlan,
    NumpyKernel,
    _apply_stoich,
    _propensities_cumsum_T,
    _propensities_cumsum_T_rows,
    _select_events,
    available_kernels,
    kernel_available,
    make_kernel,
)
from repro.cwc.network import Reaction, ReactionNetwork
from repro.models import neurospora_network

needs_numba = pytest.mark.skipif(not kernel_available("numba"),
                                 reason="numba not installed")
needs_cupy = pytest.mark.skipif(not kernel_available("cupy"),
                                reason="cupy not installed or no device")


def third_order_network() -> ReactionNetwork:
    """A network exercising the falling-factorial path (need == 3)."""
    return ReactionNetwork(
        "trimer",
        initial={"a": 60, "b": 20, "t": 0},
        reactions=(
            Reaction("form", (("a", 3),), (("t", 1),), 1e-4),
            Reaction("decay", (("t", 1),), (("a", 3),), 0.5),
            Reaction("swap", (("a", 1), ("b", 1)), (("b", 2),), 0.01),
        ),
        observables=("a", "t"))


class PythonKernel(NumpyKernel):
    """The numba backend's algorithm without the JIT: runs the exact
    loops `njit` compiles, so equivalence here certifies the algorithm
    even where numba cannot be installed."""

    name = "python"

    def __init__(self, compiled):
        super().__init__(compiled)
        self.plan = MassActionPlan(compiled)
        self._functional = compiled._functional

    def propensities_cumsum_T(self, X, rates_rows=None):
        plan = self.plan
        m = X.shape[0]
        if self._functional:
            func_values = np.empty((len(self._functional), m))
            for k, (_j, law) in enumerate(self._functional):
                func_values[k] = law(X)
        else:
            func_values = np.empty((0, m))
        out = np.empty((plan.n_reactions, m))
        if rates_rows is None:
            _propensities_cumsum_T(plan.rates, plan.indptr, plan.cols,
                                   plan.needs, plan.facts, plan.func_index,
                                   func_values, X, out)
        else:
            rows = np.ascontiguousarray(rates_rows, dtype=np.float64)
            _propensities_cumsum_T_rows(rows, plan.indptr, plan.cols,
                                        plan.needs, plan.facts,
                                        plan.func_index, func_values, X, out)
        return out

    def select_events(self, cumulative, picks):
        chosen = np.empty(cumulative.shape[1], dtype=np.int64)
        _select_events(cumulative, picks, self.plan.n_reactions, chosen)
        return chosen

    def apply_stoich(self, X, stoich, chosen):
        _apply_stoich(X, stoich, chosen)


def networks():
    return [neurospora_network(omega=20),  # Hill functional rates
            third_order_network()]         # pure mass action, order 3


def random_states(compiled, m=64, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 40, size=(m, compiled.n_species)).astype(
        np.float64)


class TestPlanAndLoops:
    def test_plan_csr_structure(self):
        compiled = CompiledNetwork(third_order_network())
        plan = MassActionPlan(compiled)
        assert plan.n_reactions == 3
        assert plan.indptr.tolist() == [0, 1, 2, 4]
        assert plan.needs.tolist() == [3, 1, 1, 1]
        assert plan.facts[0] == 6.0
        assert (plan.func_index == -1).all()  # no functional laws

    def test_plan_marks_functional_rows(self):
        compiled = CompiledNetwork(neurospora_network(omega=20))
        plan = MassActionPlan(compiled)
        functional_rows = {j for j, _ in compiled._functional}
        assert {int(j) for j in np.flatnonzero(plan.func_index >= 0)} \
            == functional_rows

    @pytest.mark.parametrize("network", networks(),
                             ids=["neurospora", "trimer"])
    def test_propensity_cumsum_bitwise_equals_oracle(self, network):
        compiled = CompiledNetwork(network)
        X = random_states(compiled)
        oracle = np.cumsum(compiled.propensities_T(X), axis=0)
        ours = PythonKernel(compiled).propensities_cumsum_T(X)
        # bitwise: same IEEE ops in the same order, not merely close
        assert ours.tobytes() == oracle.tobytes()

    def test_select_events_bitwise_equals_oracle(self):
        compiled = CompiledNetwork(third_order_network())
        X = random_states(compiled)
        cumulative = np.cumsum(compiled.propensities_T(X), axis=0)
        rng = np.random.default_rng(5)
        picks = rng.random(X.shape[0]) * cumulative[-1]
        oracle = (cumulative < picks[None, :]).sum(axis=0)
        np.clip(oracle, 0, compiled.n_reactions - 1, out=oracle)
        ours = PythonKernel(compiled).select_events(cumulative, picks)
        assert np.array_equal(ours, oracle)

    def test_apply_stoich_bitwise_equals_oracle(self):
        compiled = CompiledNetwork(third_order_network())
        X = random_states(compiled)
        stoich = compiled.stoich.astype(np.float64)
        chosen = np.array([0, 1, 2] * 21 + [0], dtype=np.int64)
        oracle = X.copy()
        oracle += stoich[chosen]
        ours = X.copy()
        PythonKernel(compiled).apply_stoich(ours, stoich, chosen)
        assert ours.tobytes() == oracle.tobytes()


def run_batch(network, kernel_obj=None, kernel_name="numpy", n=16,
              seed=42, t_end=8.0):
    sim = BatchFlatSimulator(network, n, seed=seed, kernel="numpy")
    if kernel_obj is not None:
        sim._kernel = kernel_obj(sim.compiled)
        sim.kernel_name = kernel_obj.name
    elif kernel_name != "numpy":
        sim = BatchFlatSimulator(network, n, seed=seed, kernel=kernel_name)
    for target in (2.5, 5.0, t_end):
        sim.advance_to(np.full(n, target))
    return sim


class TestTrajectoryBitIdentity:
    @pytest.mark.parametrize("network", networks(),
                             ids=["neurospora", "trimer"])
    def test_python_loops_reproduce_numpy_trajectories(self, network):
        """Whole trajectories through the kernel surface are bit-equal
        to the inline numpy path: same counts, same clocks, same step
        counters, for the same seeds."""
        ref = run_batch(network)
        alt = run_batch(network, kernel_obj=PythonKernel)
        assert alt.counts.tobytes() == ref.counts.tobytes()
        assert alt.times.tobytes() == ref.times.tobytes()
        assert np.array_equal(alt.steps, ref.steps)
        assert np.array_equal(alt.exhausted, ref.exhausted)

    @needs_numba
    @pytest.mark.parametrize("network", networks(),
                             ids=["neurospora", "trimer"])
    def test_numba_reproduces_numpy_trajectories(self, network):
        ref = run_batch(network)
        jit = run_batch(network, kernel_name="numba")
        assert jit.counts.tobytes() == ref.counts.tobytes()
        assert jit.times.tobytes() == ref.times.tobytes()
        assert np.array_equal(jit.steps, ref.steps)

    @needs_numba
    def test_numba_workflow_matches_numpy_workflow(self):
        from repro.pipeline import WorkflowConfig, run_workflow
        network = neurospora_network(omega=20)

        def run(kernel):
            return run_workflow(network, WorkflowConfig(
                n_simulations=16, t_end=5.0, sample_every=0.5,
                quantum=2.5, n_sim_workers=2, window_size=5, seed=0,
                engine="batch", batch_size=8, engine_kernel=kernel,
                keep_cuts=True))
        ref, jit = run("numpy"), run("numba")
        for a, b in zip(ref.cuts, jit.cuts):
            assert a == b

    @needs_cupy
    def test_cupy_smoke(self):
        """The GPU shim is statistically equivalent, not bit-pinned:
        just prove it runs and conserves the obvious invariants."""
        sim = run_batch(third_order_network(), kernel_name="cupy")
        assert (sim.times >= 8.0 - 1e-9).all()
        assert (sim.counts >= 0).all()


class TestDegradation:
    def test_unknown_kernel_rejected(self):
        compiled = CompiledNetwork(third_order_network())
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("fortran", compiled)

    def test_missing_backend_raises_kernel_unavailable(self):
        if kernel_available("numba"):
            pytest.skip("numba installed: unavailability path not "
                        "reachable here")
        compiled = CompiledNetwork(third_order_network())
        with pytest.raises(KernelUnavailable, match="numba"):
            make_kernel("numba", compiled)

    def test_simulator_fails_fast_on_missing_kernel(self):
        if kernel_available("numba"):
            pytest.skip("numba installed")
        with pytest.raises(KernelUnavailable):
            BatchFlatSimulator(third_order_network(), 4, seed=0,
                               kernel="numba")

    def test_available_kernels_probe(self):
        probe = available_kernels()
        assert probe["numpy"] is True
        assert set(probe) == {"numpy", "numba", "cupy"}

    def test_simulator_pickles_without_kernel_object(self):
        sim = BatchFlatSimulator(third_order_network(), 4, seed=0)
        sim.advance_to(np.full(4, 1.0))
        clone = pickle.loads(pickle.dumps(sim))
        assert clone.kernel_name == "numpy"
        assert clone._kernel is None
        ref = sim.advance_to(np.full(4, 2.0)).copy()
        assert np.array_equal(clone.advance_to(np.full(4, 2.0)), ref)
        assert clone.counts.tobytes() == sim.counts.tobytes()
