"""Tree matching: multiplicities and match selection."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cwc.matching import enumerate_matches, match_multiplicity, select_match
from repro.cwc.multiset import Multiset
from repro.cwc.parser import parse_term
from repro.cwc.rule import CompartmentPattern, Pattern


def atoms(text):
    return Multiset.from_string(text)


class TestAtomMultiplicity:
    def test_empty_pattern_is_one(self):
        assert match_multiplicity(Pattern(), parse_term("5*a")) == 1

    def test_single_species(self):
        pattern = Pattern(atoms=atoms("2*a"))
        assert match_multiplicity(pattern, parse_term("5*a")) == math.comb(5, 2)

    def test_multi_species_product(self):
        pattern = Pattern(atoms=atoms("a b"))
        term = parse_term("3*a 4*b")
        assert match_multiplicity(pattern, term) == 12

    def test_missing_species_is_zero(self):
        pattern = Pattern(atoms=atoms("c"))
        assert match_multiplicity(pattern, parse_term("3*a")) == 0


class TestCompartmentMultiplicity:
    def test_single_pattern_counts_children(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms(""), atoms("")),))
        term = parse_term("(m | a):cell (m | b):cell ( | ):other")
        assert match_multiplicity(pattern, term) == 2

    def test_wrap_and_content_requirements(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms("m"), atoms("a")),))
        term = parse_term("(m m | 3*a):cell")
        # C(2 wraps, 1) * C(3 contents, 1) = 6
        assert match_multiplicity(pattern, term) == 6

    def test_two_patterns_injective(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms(""), atoms("")),
            CompartmentPattern("cell", atoms(""), atoms("")),
        ))
        term = parse_term("( | ):cell ( | ):cell")
        # ordered injective assignments of 2 patterns onto 2 children
        assert match_multiplicity(pattern, term) == 2

    def test_two_patterns_distinct_labels(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms(""), atoms("")),
            CompartmentPattern("nucleus", atoms(""), atoms("")),
        ))
        term = parse_term("( | ):cell ( | ):nucleus ( | ):cell")
        assert match_multiplicity(pattern, term) == 2

    def test_atoms_and_compartments_multiply(self):
        pattern = Pattern(atoms=atoms("a"), compartments=(
            CompartmentPattern("cell", atoms(""), atoms("")),))
        term = parse_term("3*a ( | ):cell ( | ):cell")
        assert match_multiplicity(pattern, term) == 6

    def test_no_matching_child_is_zero(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("vesicle", atoms(""), atoms("")),))
        assert match_multiplicity(pattern, parse_term("( | ):cell")) == 0


class TestEnumerateAndSelect:
    def test_enumerate_weights_sum_to_multiplicity(self):
        pattern = Pattern(atoms=atoms("a"), compartments=(
            CompartmentPattern("cell", atoms("m"), atoms("b")),))
        term = parse_term("2*a (m | 2*b):cell (m m | b):cell")
        matches = enumerate_matches(pattern, term)
        assert sum(m.weight for m in matches) == \
            match_multiplicity(pattern, term)

    def test_enumerate_children_are_distinct(self):
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms(""), atoms("")),
            CompartmentPattern("cell", atoms(""), atoms("")),
        ))
        term = parse_term("( | ):cell ( | ):cell ( | ):cell")
        for match in enumerate_matches(pattern, term):
            assert match.children[0] is not match.children[1]

    def test_select_none_when_no_match(self):
        pattern = Pattern(atoms=atoms("z"))
        assert select_match(pattern, parse_term("a"), random.Random(0)) is None

    def test_select_respects_weights(self):
        # one child has weight 4, the other weight 1: selection must hit
        # the heavy child most of the time
        pattern = Pattern(compartments=(
            CompartmentPattern("cell", atoms(""), atoms("b")),))
        term = parse_term("(m | 4*b):cell (n | b):cell")
        rng = random.Random(7)
        heavy = 0
        for _ in range(300):
            match = select_match(pattern, term, rng)
            if match.children[0].wrap.count("m"):
                heavy += 1
        assert 0.7 < heavy / 300 < 0.9  # expectation 0.8

    @given(st.integers(0, 5), st.integers(0, 5), st.integers(0, 3))
    @settings(max_examples=40)
    def test_multiplicity_matches_enumeration(self, na, nb, need):
        term = parse_term(f"{na}*a {nb}*b" if na and nb else
                          (f"{na}*a" if na else (f"{nb}*b" if nb else "")))
        pattern = Pattern(atoms=Multiset({"a": need} if need else {}))
        matches = enumerate_matches(pattern, term)
        total = sum(m.weight for m in matches)
        assert total == match_multiplicity(pattern, term)
