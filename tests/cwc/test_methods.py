"""Alternative SSA methods: first-reaction and tau-leaping."""

import statistics

import pytest

from repro.cwc import (
    FirstReactionSimulator,
    FlatSimulator,
    ReactionNetwork,
    Reaction,
    TauLeapSimulator,
    integrate_ode,
)
from repro.models import mm_enzyme_network


def isomerisation(n0=2000):
    """A <-> B with known equilibrium (B/A = 2) and no slow transient."""
    return ReactionNetwork("iso", {"A": n0}, [
        Reaction.make("fwd", "A", "B", 2.0),
        Reaction.make("bwd", "B", "A", 1.0),
    ])


class TestFirstReaction:
    def test_deterministic(self):
        net = isomerisation(100)
        a = FirstReactionSimulator(net, seed=3).run(2.0, 0.5)
        b = FirstReactionSimulator(net, seed=3).run(2.0, 0.5)
        assert a.samples == b.samples

    def test_conservation(self):
        net = isomerisation(100)
        result = FirstReactionSimulator(net, seed=1).run(5.0, 1.0)
        for a, b in result.samples:
            assert a + b == 100

    def test_agrees_with_direct_method_statistically(self):
        """Both exact methods must sample the same process: compare the
        equilibrium mean of B over seeds."""
        net = isomerisation(300)
        direct = [FlatSimulator(net, seed=s).run(5.0, 5.0).samples[-1][1]
                  for s in range(20)]
        first = [FirstReactionSimulator(net, seed=100 + s)
                 .run(5.0, 5.0).samples[-1][1] for s in range(20)]
        mean_direct = statistics.mean(direct)
        mean_first = statistics.mean(first)
        pooled_sd = (statistics.stdev(direct) + statistics.stdev(first)) / 2
        assert abs(mean_direct - mean_first) < 3 * pooled_sd / (20 ** 0.5) * 2

    def test_exhaustion(self):
        net = ReactionNetwork("decay", {"A": 3},
                              [Reaction.make("d", "A", "", 1.0)])
        simulator = FirstReactionSimulator(net, seed=0)
        simulator.advance(100.0)
        assert simulator.counts["A"] == 0
        assert not simulator.step()


class TestTauLeaping:
    def test_validation(self):
        with pytest.raises(ValueError):
            TauLeapSimulator(isomerisation(), epsilon=0.0)

    def test_leaps_actually_happen(self):
        simulator = TauLeapSimulator(isomerisation(5000), seed=1)
        simulator.advance(3.0)
        assert simulator.leaps > 5
        # each leap fires many reactions at once
        assert simulator.steps > 20 * simulator.leaps

    def test_conservation_exact_under_leaping(self):
        simulator = TauLeapSimulator(isomerisation(5000), seed=2)
        simulator.advance(3.0)
        assert simulator.counts["A"] + simulator.counts["B"] == 5000

    def test_counts_never_negative(self):
        net = ReactionNetwork("decay", {"A": 500},
                              [Reaction.make("d", "A", "", 5.0)])
        simulator = TauLeapSimulator(net, seed=3)
        simulator.advance(10.0)
        assert simulator.counts["A"] == 0  # fully decayed, never negative

    def test_tracks_ode_mean(self):
        """The leaped trajectory must track the deterministic limit for
        a large, well-mixed system."""
        net = isomerisation(9000)
        ode = integrate_ode(net, t_end=2.0, sample_every=2.0)
        b_ode = ode.column("B")[-1]
        simulator = TauLeapSimulator(net, seed=4)
        simulator.advance(2.0)
        assert simulator.counts["B"] == pytest.approx(b_ode, rel=0.05)

    def test_agrees_with_exact_ssa_statistically(self):
        net = isomerisation(2000)
        exact = [FlatSimulator(net, seed=s).run(2.0, 2.0).samples[-1][1]
                 for s in range(10)]
        leaped = []
        for s in range(10):
            simulator = TauLeapSimulator(net, seed=200 + s)
            simulator.advance(2.0)
            leaped.append(simulator.counts["B"])
        assert statistics.mean(leaped) == pytest.approx(
            statistics.mean(exact), rel=0.03)

    def test_hybrid_falls_back_on_small_systems(self):
        """Tiny populations must be handled by exact steps, silently."""
        net = isomerisation(8)
        simulator = TauLeapSimulator(net, seed=5)
        simulator.advance(5.0)
        assert simulator.exact_steps > 0
        assert simulator.counts["A"] + simulator.counts["B"] == 8

    def test_run_interface(self):
        result = TauLeapSimulator(mm_enzyme_network(), seed=0).run(5.0, 1.0)
        assert len(result.times) == 6
        assert result.observable_names == ("E", "S", "ES", "P")


class TestCheckpointing:
    def test_flat_snapshot_restore(self, neurospora_small):
        simulator = FlatSimulator(neurospora_small, seed=7)
        simulator.advance(2.0)
        checkpoint = simulator.snapshot()
        simulator.advance(3.0)
        after_direct = simulator.observe()
        simulator.restore(checkpoint)
        simulator.advance(3.0)
        assert simulator.observe() == after_direct

    def test_flat_snapshot_isolated(self, neurospora_small):
        simulator = FlatSimulator(neurospora_small, seed=7)
        checkpoint = simulator.snapshot()
        simulator.advance(2.0)
        # advancing must not mutate the snapshot
        simulator.restore(checkpoint)
        assert simulator.time == 0.0
        assert simulator.steps == 0

    def test_cwc_snapshot_restore(self, neurospora_cwc_small):
        from repro.cwc import CWCSimulator
        simulator = CWCSimulator(neurospora_cwc_small, seed=7)
        simulator.advance(1.0)
        checkpoint = simulator.snapshot()
        simulator.advance(1.0)
        after_direct = simulator.observe()
        simulator.restore(checkpoint)
        simulator.advance(1.0)
        assert simulator.observe() == after_direct
