"""Multiset semantics, including property-based checks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cwc.multiset import Multiset

species = st.sampled_from(list("abcdef"))
multisets = st.dictionaries(species, st.integers(1, 6), max_size=5)


class TestConstruction:
    def test_from_mapping(self):
        ms = Multiset({"a": 2, "b": 1})
        assert ms.count("a") == 2 and ms.count("b") == 1

    def test_from_iterable(self):
        ms = Multiset(["a", "a", "b"])
        assert ms.count("a") == 2

    def test_from_string(self):
        ms = Multiset.from_string("2*a b c")
        assert ms.count("a") == 2 and ms.count("b") == 1

    def test_copy_constructor(self):
        original = Multiset({"a": 1})
        copy = Multiset(original)
        copy.add("a")
        assert original.count("a") == 1

    def test_zero_counts_never_stored(self):
        ms = Multiset({"a": 0})
        assert "a" not in ms
        assert len(ms) == 0

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Multiset().add("a", -1)


class TestMutation:
    def test_add_remove_roundtrip(self):
        ms = Multiset()
        ms.add("x", 3)
        ms.remove("x", 2)
        assert ms.count("x") == 1
        ms.remove("x")
        assert "x" not in ms

    def test_remove_too_many_raises(self):
        ms = Multiset({"a": 1})
        with pytest.raises(ValueError):
            ms.remove("a", 2)

    def test_remove_all_requires_containment(self):
        ms = Multiset({"a": 1})
        with pytest.raises(ValueError):
            ms.remove_all({"a": 1, "b": 1})
        # failed remove_all must not corrupt state
        assert ms.count("a") == 1

    def test_add_all(self):
        ms = Multiset({"a": 1})
        ms.add_all({"a": 2, "b": 3})
        assert ms.count("a") == 3 and ms.count("b") == 3

    def test_clear(self):
        ms = Multiset({"a": 5})
        ms.clear()
        assert ms.is_empty()


class TestQueries:
    def test_contains_submultiset(self):
        big = Multiset({"a": 3, "b": 1})
        assert big.contains(Multiset({"a": 2}))
        assert big.contains(Multiset())
        assert not big.contains(Multiset({"a": 4}))
        assert not big.contains(Multiset({"c": 1}))

    def test_combinations_binomials(self):
        ms = Multiset({"a": 5, "b": 3})
        need = Multiset({"a": 2, "b": 1})
        assert ms.combinations(need) == math.comb(5, 2) * math.comb(3, 1)

    def test_combinations_empty_pattern_is_one(self):
        assert Multiset({"a": 4}).combinations(Multiset()) == 1

    def test_combinations_insufficient_is_zero(self):
        assert Multiset({"a": 1}).combinations(Multiset({"a": 2})) == 0

    def test_total_and_len(self):
        ms = Multiset({"a": 2, "b": 3})
        assert ms.total() == 5
        assert len(ms) == 2

    def test_iter_with_multiplicity(self):
        assert sorted(Multiset({"a": 2, "b": 1})) == ["a", "a", "b"]

    def test_str_canonical(self):
        assert str(Multiset({"b": 1, "a": 2})) == "2*a b"
        assert str(Multiset()) == "•"


class TestOperators:
    def test_add_operator(self):
        c = Multiset({"a": 1}) + Multiset({"a": 2, "b": 1})
        assert c == Multiset({"a": 3, "b": 1})

    def test_sub_operator(self):
        c = Multiset({"a": 3, "b": 1}) - Multiset({"a": 1, "b": 1})
        assert c == Multiset({"a": 2})

    def test_equality_ignores_construction_order(self):
        assert Multiset(["a", "b", "a"]) == Multiset({"b": 1, "a": 2})

    def test_frozen_hashable(self):
        frozen = Multiset({"a": 2}).frozen()
        assert hash(frozen) == hash(Multiset({"a": 2}).frozen())


class TestProperties:
    @given(multisets, multisets)
    @settings(max_examples=60)
    def test_union_then_difference_roundtrips(self, a, b):
        ma, mb = Multiset(a), Multiset(b)
        assert (ma + mb) - mb == ma

    @given(multisets, multisets)
    @settings(max_examples=60)
    def test_contains_iff_combinations_positive(self, a, b):
        ma, mb = Multiset(a), Multiset(b)
        assert ma.contains(mb) == (ma.combinations(mb) > 0)

    @given(multisets)
    @settings(max_examples=40)
    def test_total_is_sum_of_counts(self, a):
        ms = Multiset(a)
        assert ms.total() == sum(a.values())

    @given(multisets, multisets)
    @settings(max_examples=60)
    def test_combinations_product_of_binomials(self, a, b):
        ma, mb = Multiset(a), Multiset(b)
        expected = 1
        for s, need in b.items():
            expected *= math.comb(a.get(s, 0), need) if a.get(s, 0) >= need else 0
        assert ma.combinations(mb) == expected
