"""Flat reaction networks and the plain-Gillespie baseline engine."""

import math
import statistics

import pytest

from repro.cwc import (
    CWCSimulator,
    FlatSimulator,
    Model,
    Reaction,
    ReactionNetwork,
    Rule,
)


class TestReaction:
    def test_make_normalises(self):
        r = Reaction.make("r", "a a b", {"c": 1}, 1.0)
        assert r.reactants == (("a", 2), ("b", 1))
        assert r.products == (("c", 1),)

    def test_mass_action_propensity(self):
        r = Reaction.make("r", {"a": 2}, {}, 0.5)
        assert r.propensity({"a": 4}) == 0.5 * math.comb(4, 2)

    def test_propensity_zero_when_insufficient(self):
        r = Reaction.make("r", {"a": 2}, {}, 0.5)
        assert r.propensity({"a": 1}) == 0.0

    def test_functional_rate_is_full_propensity(self):
        r = Reaction.make("r", {"a": 1}, {}, lambda s: 3.25)
        assert r.propensity({"a": 10}) == 3.25  # no extra h factor

    def test_functional_rate_gated_on_availability(self):
        r = Reaction.make("r", {"a": 1}, {}, lambda s: 3.25)
        assert r.propensity({"a": 0}) == 0.0

    def test_apply_updates_counts(self):
        r = Reaction.make("r", {"a": 1}, {"b": 2}, 1.0)
        counts = {"a": 3, "b": 0}
        r.apply(counts)
        assert counts == {"a": 2, "b": 2}


class TestReactionNetwork:
    def test_species_inferred(self):
        net = ReactionNetwork("n", {"a": 1},
                              [Reaction.make("r", "a", "b c", 1.0)])
        assert net.species == ("a", "b", "c")

    def test_needs_reactions(self):
        with pytest.raises(ValueError):
            ReactionNetwork("n", {"a": 1}, [])

    def test_unknown_observable_rejected(self):
        with pytest.raises(ValueError):
            ReactionNetwork("n", {"a": 1},
                            [Reaction.make("r", "a", "", 1.0)],
                            observables=("zz",))

    def test_from_model_flat(self, dimer_model):
        net = ReactionNetwork.from_model(dimer_model)
        assert net.initial == {"a": 100}
        assert len(net.reactions) == 2

    def test_from_model_rejects_compartments(self, neurospora_cwc_small):
        with pytest.raises(ValueError):
            ReactionNetwork.from_model(neurospora_cwc_small)


class TestFlatSimulator:
    def test_deterministic(self, neurospora_small):
        a = FlatSimulator(neurospora_small, seed=7).run(5.0, 1.0)
        b = FlatSimulator(neurospora_small, seed=7).run(5.0, 1.0)
        assert a.samples == b.samples

    def test_conservation(self, dimer_model):
        net = ReactionNetwork.from_model(dimer_model)
        result = FlatSimulator(net, seed=3).run(20.0, 2.0)
        for a, d in result.samples:
            assert a + 2 * d == 100

    def test_advance_and_run_agree(self, neurospora_small):
        whole = FlatSimulator(neurospora_small, seed=5).run(4.0, 1.0)
        sliced = FlatSimulator(neurospora_small, seed=5)
        samples = [sliced.observe()]
        for _ in range(4):
            sliced.advance(1.0)
            samples.append(sliced.observe())
        assert samples == whole.samples

    def test_counts_never_negative(self, lotka_small):
        simulator = FlatSimulator(lotka_small, seed=0)
        for _ in range(2000):
            if not simulator.step():
                break
            assert all(v >= 0 for v in simulator.counts.values())

    def test_extinction_halts(self):
        net = ReactionNetwork("death", {"a": 5},
                              [Reaction.make("r", "a", "", 5.0)])
        simulator = FlatSimulator(net, seed=1)
        simulator.advance(100.0)
        assert simulator.counts["a"] == 0
        assert simulator.steps == 5
        assert not simulator.step()


class TestDependencyGraph:
    def test_self_dependency(self):
        """Every reaction that changes state invalidates at least its own
        propensity."""
        net = ReactionNetwork("n", {"a": 5, "b": 0},
                              [Reaction.make("r", "a", "b", 1.0)])
        deps = net.reaction_dependencies()
        assert 0 in deps[0]

    def test_catalyst_only_reaction_triggers_nothing(self):
        """A reaction with zero net change (pure catalysis) has an empty
        dependent set -- firing it cannot move any propensity."""
        net = ReactionNetwork(
            "cat", {"e": 3, "s": 10},
            [Reaction.make("noop", "e", "e", 1.0),
             Reaction.make("use", "s", "", 1.0)])
        deps = net.reaction_dependencies()
        assert deps[0] == ()
        assert deps[1] == (1,)

    def test_opaque_rate_reads_everything(self):
        net = ReactionNetwork(
            "opaque", {"a": 5, "b": 5},
            [Reaction.make("fa", "a", "", lambda s: 1.0),
             Reaction.make("fb", "b", "b b", 2.0)])
        deps = net.reaction_dependencies()
        # the opaque-rated reaction depends on anything changing state
        assert 0 in deps[1]

    @pytest.mark.parametrize("maker_name", [
        "toggle_switch_network", "lotka_volterra_network"])
    def test_partial_updates_equal_full_recompute(self, maker_name):
        """Property test for the incremental propensity cache: after every
        fired reaction, the partially updated propensities and the running
        total must match a full recomputation."""
        import repro.models as models
        net = getattr(models, maker_name)()
        sim = FlatSimulator(net, seed=13)
        for _ in range(500):
            if not sim.step(t_max=1e9):
                break
            full = [r.propensity(sim.counts) for r in net.reactions]
            assert sim._props == pytest.approx(full)
            assert sim._total == pytest.approx(sum(full))

    def test_total_propensity_matches_sum(self, neurospora_small):
        sim = FlatSimulator(neurospora_small, seed=14)
        sim.advance(1.0)
        full = sum(r.propensity(sim.counts)
                   for r in neurospora_small.reactions)
        assert sim.total_propensity() == pytest.approx(full)


class TestEngineAgreement:
    def test_flat_and_cwc_agree_on_means(self, dimer_model):
        """Both engines must sample the same stochastic process: compare
        the mean equilibrium dimer count across seeds."""
        net = ReactionNetwork.from_model(dimer_model)
        flat = [FlatSimulator(net, seed=s).run(30.0, 30.0).samples[-1][1]
                for s in range(25)]
        cwc = [CWCSimulator(dimer_model, seed=1000 + s).run(
            30.0, 30.0).samples[-1][1] for s in range(25)]
        mean_flat = statistics.mean(flat)
        mean_cwc = statistics.mean(cwc)
        spread = (statistics.stdev(flat) + statistics.stdev(cwc)) / 2 + 1e-9
        # means within 3 pooled standard errors
        assert abs(mean_flat - mean_cwc) < 3 * spread / math.sqrt(25) * 2
