"""Deterministic ODE baseline."""

import pytest

from repro.cwc import ReactionNetwork, Reaction, integrate_ode
from repro.models import neurospora_network


class TestRK4:
    def test_pure_decay_matches_exponential(self):
        import math
        net = ReactionNetwork("decay", {"a": 1000},
                              [Reaction.make("r", "a", "", 0.5)])
        result = integrate_ode(net, t_end=4.0, sample_every=1.0)
        for t, (a,) in zip(result.times, result.values):
            assert a == pytest.approx(1000 * math.exp(-0.5 * t), rel=1e-5)

    def test_conservation(self):
        net = ReactionNetwork("iso", {"a": 100},
                              [Reaction.make("f", "a", "b", 1.0),
                               Reaction.make("b", "b", "a", 2.0)])
        result = integrate_ode(net, t_end=5.0, sample_every=0.5)
        for a, b in result.values:
            assert a + b == pytest.approx(100, rel=1e-9)

    def test_equilibrium_ratio(self):
        net = ReactionNetwork("iso", {"a": 90}, [
            Reaction.make("f", "a", "b", 1.0),
            Reaction.make("b", "b", "a", 2.0)])
        result = integrate_ode(net, t_end=30.0, sample_every=30.0)
        a, b = result.values[-1]
        assert b / a == pytest.approx(0.5, rel=1e-4)

    def test_column_accessor(self):
        net = ReactionNetwork("decay", {"a": 10},
                              [Reaction.make("r", "a", "", 1.0)])
        result = integrate_ode(net, 1.0, 0.5)
        assert result.column("a") == [v[0] for v in result.values]

    def test_unknown_method(self):
        net = ReactionNetwork("decay", {"a": 10},
                              [Reaction.make("r", "a", "", 1.0)])
        with pytest.raises(ValueError):
            integrate_ode(net, 1.0, 0.5, method="euler")

    def test_initial_override(self):
        net = ReactionNetwork("decay", {"a": 10},
                              [Reaction.make("r", "a", "", 1.0)])
        result = integrate_ode(net, 1.0, 1.0, initial=[500.0])
        assert result.values[0] == (500.0,)


class TestNeurospora:
    def test_period_is_21_5_hours(self):
        """The headline check: the published deterministic model
        oscillates with a 21.5 h period."""
        net = neurospora_network(omega=100)
        result = integrate_ode(net, t_end=180.0, sample_every=0.25)
        m = result.column("M")
        # peaks after the transient
        peaks = [result.times[i] for i in range(160, len(m) - 1)
                 if m[i - 1] < m[i] >= m[i + 1] and m[i] > 100]
        periods = [b - a for a, b in zip(peaks, peaks[1:])]
        assert len(periods) >= 3
        for period in periods:
            assert period == pytest.approx(21.5, abs=0.3)

    def test_scipy_agrees_with_rk4(self):
        pytest.importorskip("scipy")
        net = neurospora_network(omega=50)
        rk4 = integrate_ode(net, t_end=20.0, sample_every=5.0)
        rk45 = integrate_ode(net, t_end=20.0, sample_every=5.0,
                             method="rk45")
        for ours, theirs in zip(rk4.values, rk45.values):
            for x, y in zip(ours, theirs):
                assert x == pytest.approx(y, rel=2e-3, abs=1e-6)
