"""The model DSL parser."""

import pytest

from repro.cwc.parser import ParseError, parse_model, parse_term
from repro.cwc.rates import HillRepression, MichaelisMenten
from repro.cwc.term import TOP


class TestParseTerm:
    def test_atoms(self):
        term = parse_term("a 3*b")
        assert term.atoms.count("a") == 1
        assert term.atoms.count("b") == 3

    def test_compartment(self):
        term = parse_term("(m | a a):cell")
        comp = term.compartments[0]
        assert comp.label == "cell"
        assert comp.wrap.count("m") == 1
        assert comp.content.atoms.count("a") == 2

    def test_nested(self):
        term = parse_term("(m | (n | x):inner):outer")
        inner = term.compartments[0].content.compartments[0]
        assert inner.label == "inner"
        assert inner.content.atoms.count("x") == 1

    def test_empty_term(self):
        term = parse_term("")
        assert term.atoms.is_empty() and not term.compartments

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_term("a )")

    def test_compartment_needs_label(self):
        with pytest.raises(ParseError):
            parse_term("(m | a)")


MODEL = """
# a comment line
model demo

param k = 0.25
param v = 2.0

term: 10*a (m | b):cell

rule bind @ k : a a => d                 # inline comment
rule enter @ 0.5 : a $(m | ):cell => $1(m | a)
rule grow @ mm(v, 0.5, a, 1.0) in cell : a => a a
rule burst @ 1.0 : $(m | b):cell => dissolve $1
rule make @ hill_rep(v, 1.0, 4, d, 1.0) : => a

observable dimers = d
observable a_in = a in cell
"""


class TestParseModel:
    def test_full_model(self):
        model = parse_model(MODEL)
        assert model.name == "demo"
        assert len(model.rules) == 5
        assert model.observable_names == ("dimers", "a_in")
        assert model.term.atoms.count("a") == 10

    def test_param_substitution(self):
        model = parse_model(MODEL)
        bind = next(r for r in model.rules if r.name == "bind")
        assert bind.rate == 0.25

    def test_rule_context(self):
        model = parse_model(MODEL)
        grow = next(r for r in model.rules if r.name == "grow")
        assert grow.context == "cell"
        bind = next(r for r in model.rules if r.name == "bind")
        assert bind.context == TOP

    def test_rate_laws_constructed(self):
        model = parse_model(MODEL)
        grow = next(r for r in model.rules if r.name == "grow")
        assert isinstance(grow.rate, MichaelisMenten)
        assert grow.rate.species == "a"
        make = next(r for r in model.rules if r.name == "make")
        assert isinstance(make.rate, HillRepression)
        assert make.rate.v == 2.0  # param reference resolved

    def test_compartment_pattern_and_rhs(self):
        model = parse_model(MODEL)
        enter = next(r for r in model.rules if r.name == "enter")
        assert len(enter.lhs.compartments) == 1
        assert enter.lhs.compartments[0].label == "cell"
        rhs = enter.rhs.compartments[0]
        assert rhs.from_match == 0
        assert rhs.add_wrap.count("m") == 1
        assert rhs.add_content.count("a") == 1

    def test_dissolve_parsed(self):
        model = parse_model(MODEL)
        burst = next(r for r in model.rules if r.name == "burst")
        assert burst.rhs.compartments[0].dissolve

    def test_empty_lhs_rule(self):
        model = parse_model(MODEL)
        make = next(r for r in model.rules if r.name == "make")
        assert make.lhs.is_empty()


class TestParseErrors:
    def test_missing_model_name(self):
        with pytest.raises(ParseError):
            parse_model("term: a\nrule r @ 1.0 : a => b")

    def test_missing_term(self):
        with pytest.raises(ParseError, match="term"):
            parse_model("model m\nrule r @ 1.0 : a => b")

    def test_missing_rules(self):
        with pytest.raises(ParseError, match="rules"):
            parse_model("model m\nterm: a")

    def test_unknown_directive(self):
        with pytest.raises(ParseError, match="unknown directive"):
            parse_model("model m\nfrobnicate yes")

    def test_unknown_param(self):
        with pytest.raises(ParseError, match="unknown parameter"):
            parse_model("model m\nterm: a\nrule r @ kk : a => b")

    def test_unknown_rate_law(self):
        with pytest.raises(ParseError, match="unknown rate law"):
            parse_model("model m\nterm: a\nrule r @ foo(1) : a => b")

    def test_rate_law_arity(self):
        with pytest.raises(ParseError, match="arguments"):
            parse_model("model m\nterm: a\nrule r @ mm(1.0) : a => b")

    def test_bad_match_reference(self):
        with pytest.raises(ParseError, match=r"\$2"):
            parse_model("model m\nterm: a\n"
                        "rule r @ 1.0 : $( | ):c => $2")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_model("model m\nterm: a\nrule broken @@ : a => b")

    def test_rule_missing_colon(self):
        with pytest.raises(ParseError, match="':'"):
            parse_model("model m\nterm: a\nrule r @ 1.0 a => b")

    def test_bad_observable(self):
        with pytest.raises(ParseError, match="observable"):
            parse_model("model m\nterm: a\nrule r @ 1 : a => b\n"
                        "observable == broken")


class TestSemantics:
    def test_parsed_model_runs(self):
        from repro.cwc import CWCSimulator
        model = parse_model(MODEL)
        simulator = CWCSimulator(model, seed=0)
        simulator.advance(1.0)
        assert simulator.steps > 0
