"""Rate-law objects: formulas and picklability."""

import pickle

import pytest

from repro.cwc.multiset import Multiset
from repro.cwc.rates import (
    Constant,
    HillActivation,
    HillRepression,
    Linear,
    MichaelisMenten,
    Product,
)
from repro.cwc.rule import ContextView
from repro.cwc.term import Term


def view(**counts):
    return ContextView(Term(Multiset(counts)))


class TestFormulas:
    def test_constant(self):
        assert Constant(4.2)(view()) == 4.2

    def test_linear(self):
        assert Linear(0.5, "a")(view(a=6)) == 3.0

    def test_hill_repression_limits(self):
        law = HillRepression(v=2.0, K=1.0, n=4, species="r", omega=10.0)
        assert law(view()) == pytest.approx(20.0)           # no repressor
        assert law(view(r=1000)) == pytest.approx(0.0, abs=1e-4)

    def test_hill_repression_half_point(self):
        law = HillRepression(v=2.0, K=1.0, n=4, species="r", omega=10.0)
        assert law(view(r=10)) == pytest.approx(10.0)  # x == K -> v/2

    def test_hill_activation_half_point(self):
        law = HillActivation(v=2.0, K=1.0, n=2, species="x", omega=5.0)
        assert law(view(x=5)) == pytest.approx(5.0)

    def test_hill_activation_zero_at_zero(self):
        law = HillActivation(v=2.0, K=1.0, n=2, species="x", omega=5.0)
        assert law(view()) == 0.0

    def test_michaelis_menten_saturates(self):
        law = MichaelisMenten(v=3.0, K=0.5, species="s", omega=10.0)
        assert law(view(s=5)) == pytest.approx(10.0 * 3.0 * 0.5 / 1.0)
        assert law(view(s=100000)) == pytest.approx(30.0, rel=1e-3)

    def test_product(self):
        law = Product(Constant(2.0), Linear(1.0, "a"))
        assert law(view(a=3)) == 6.0

    def test_product_with_scalar(self):
        law = Product(5.0, Linear(1.0, "a"))
        assert law(view(a=2)) == 10.0


class TestPicklability:
    @pytest.mark.parametrize("law", [
        Constant(1.0),
        Linear(0.5, "a"),
        HillRepression(1.6, 1.0, 4, "FN", 100.0),
        HillActivation(1.0, 1.0, 2, "x", 10.0),
        MichaelisMenten(0.5, 0.13, "FC", 100.0),
        Product(Constant(2.0), Linear(1.0, "a")),
    ])
    def test_roundtrip(self, law):
        clone = pickle.loads(pickle.dumps(law))
        assert clone == law
        assert clone(view(a=3, x=3, FN=3, FC=3)) == \
            law(view(a=3, x=3, FN=3, FC=3))
