"""Property-based write -> parse round trips over random models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cwc import CWCSimulator, Model, parse_model
from repro.cwc.multiset import Multiset
from repro.cwc.rule import CompartmentPattern, CompartmentRHS, Pattern, RHS, Rule
from repro.cwc.term import Compartment, Term
from repro.cwc.writer import write_model

species = st.sampled_from(["a", "b", "c", "d"])
atoms = st.dictionaries(species, st.integers(1, 5), max_size=3).map(Multiset)
labels = st.sampled_from(["cell", "nucleus", "vesicle"])
rates = st.floats(min_value=0.001, max_value=100.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def terms(draw, depth=2):
    atoms_ms = draw(atoms)
    compartments = []
    if depth > 0:
        for _ in range(draw(st.integers(0, 2))):
            label = draw(labels)
            wrap = draw(atoms)
            content = draw(terms(depth=depth - 1))
            compartments.append(Compartment(label, wrap, content))
    return Term(atoms_ms, compartments)


@st.composite
def flat_rules(draw, index):
    lhs = draw(atoms)
    rhs = draw(atoms)
    return Rule(f"r{index}", draw(st.sampled_from(["top", "cell"])),
                Pattern(atoms=lhs), RHS(atoms=rhs), draw(rates))


@st.composite
def compartment_rules(draw, index):
    label = draw(labels)
    pattern = CompartmentPattern(label, draw(atoms), draw(atoms))
    kind = draw(st.sampled_from(["keep", "extend", "dissolve", "new"]))
    if kind == "keep":
        rhs = RHS(compartments=(CompartmentRHS(from_match=0),))
    elif kind == "extend":
        rhs = RHS(atoms=draw(atoms), compartments=(
            CompartmentRHS(from_match=0, add_wrap=draw(atoms),
                           add_content=draw(atoms)),))
    elif kind == "dissolve":
        rhs = RHS(compartments=(
            CompartmentRHS(from_match=0, dissolve=True),))
    else:
        rhs = RHS(compartments=(
            CompartmentRHS(from_match=None, label=draw(labels),
                           add_wrap=draw(atoms),
                           add_content=draw(atoms)),))
    return Rule(f"c{index}", "top",
                Pattern(atoms=draw(atoms), compartments=(pattern,)),
                rhs, draw(rates))


@st.composite
def models(draw):
    term = draw(terms())
    rules = [draw(flat_rules(i)) for i in range(draw(st.integers(1, 3)))]
    if draw(st.booleans()):
        rules.append(draw(compartment_rules(len(rules))))
    return Model("random-model", term, rules)


class TestRoundtripProperty:
    @given(models())
    @settings(max_examples=40, deadline=None)
    def test_write_parse_preserves_structure(self, model):
        reparsed = parse_model(write_model(model))
        assert reparsed.term == model.term
        assert len(reparsed.rules) == len(model.rules)
        for original, parsed in zip(model.rules, reparsed.rules):
            assert parsed.name == original.name
            assert parsed.context == original.context
            assert parsed.lhs == original.lhs
            assert parsed.rhs == original.rhs
            assert parsed.rate == pytest.approx(original.rate)

    @given(models(), st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_write_parse_preserves_dynamics(self, model, seed):
        reparsed = parse_model(write_model(model))
        a = CWCSimulator(model, seed=seed)
        b = CWCSimulator(reparsed, seed=seed)
        for _ in range(20):
            fired_a = a.step(t_max=100.0)
            fired_b = b.step(t_max=100.0)
            assert fired_a == fired_b
            assert a.time == pytest.approx(b.time)
            if not fired_a:
                break
        assert a.observe() == b.observe()
