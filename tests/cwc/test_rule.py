"""Rule construction and validation."""

import pytest

from repro.cwc.multiset import Multiset
from repro.cwc.rule import (
    CompartmentPattern,
    CompartmentRHS,
    ContextView,
    Pattern,
    RHS,
    Rule,
)
from repro.cwc.term import TOP, Term


class TestRuleConstruction:
    def test_flat_constructor(self):
        rule = Rule.flat("bind", "a b", "c", 0.5)
        assert rule.context == TOP
        assert rule.lhs.atoms == Multiset.from_string("a b")
        assert rule.rhs.atoms == Multiset.from_string("c")
        assert rule.rate == 0.5

    def test_flat_in_context(self):
        rule = Rule.flat("r", "a", "b", 1.0, context="cell")
        assert rule.context == "cell"

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Rule.flat("r", "a", "b", -1.0)

    def test_rhs_reference_out_of_range(self):
        with pytest.raises(ValueError):
            Rule("r", TOP, Pattern(),
                 RHS(compartments=(CompartmentRHS(from_match=0),)), 1.0)

    def test_rhs_double_reference_rejected(self):
        lhs = Pattern(compartments=(
            CompartmentPattern("c", Multiset(), Multiset()),))
        with pytest.raises(ValueError):
            Rule("r", TOP, lhs,
                 RHS(compartments=(CompartmentRHS(from_match=0),
                                   CompartmentRHS(from_match=0))), 1.0)


class TestCompartmentRHSValidation:
    def test_new_compartment_needs_label(self):
        with pytest.raises(ValueError):
            CompartmentRHS(from_match=None)

    def test_dissolve_requires_match(self):
        with pytest.raises(ValueError):
            CompartmentRHS(from_match=None, label="x", dissolve=True)

    def test_dissolve_delete_exclusive(self):
        with pytest.raises(ValueError):
            CompartmentRHS(from_match=0, dissolve=True, delete=True)


class TestRates:
    def test_constant_rate_propensity_factor(self):
        rule = Rule.flat("r", "a", "b", 2.5)
        view = ContextView(Term(Multiset({"a": 3})))
        assert rule.propensity_factor(view) == 2.5

    def test_callable_rate(self):
        rule = Rule.flat("r", "a", "b", lambda ctx: 0.1 * ctx.count("a"))
        view = ContextView(Term(Multiset({"a": 4})))
        assert rule.propensity_factor(view) == pytest.approx(0.4)

    def test_callable_rate_negative_result_rejected(self):
        rule = Rule.flat("r", "a", "b", lambda ctx: -1.0)
        view = ContextView(Term(Multiset({"a": 1})))
        with pytest.raises(ValueError):
            rule.propensity_factor(view)


class TestContextView:
    def test_count_and_getitem(self):
        view = ContextView(Term(Multiset({"a": 7})))
        assert view.count("a") == 7
        assert view["a"] == 7
        assert view["zz"] == 0

    def test_label_and_compartments(self):
        term = Term()
        view = ContextView(term)
        assert view.label == TOP
        assert view.n_compartments() == 0
