"""Statistical exactness of the SSA engines against analytical results.

These are the strongest correctness tests in the suite: for processes
with known closed-form distributions, the empirical statistics across
independent trajectories must match theory within sampling error.
"""

import math
import statistics

import pytest

from repro.cwc import (
    CWCSimulator,
    FirstReactionSimulator,
    FlatSimulator,
    Model,
    Reaction,
    ReactionNetwork,
    Rule,
)
from repro.cwc.rates import Constant


def immigration_death(birth=20.0, death=1.0):
    """M/M/inf: stationary distribution is Poisson(birth/death)."""
    return ReactionNetwork("immigration-death", {"X": 0}, [
        Reaction.make("in", "", "X", Constant(birth)),
        Reaction.make("out", "X", "", death),
    ])


class TestPoissonStationarity:
    """At stationarity of 0 -> X -> 0, X ~ Poisson(lambda/mu):
    mean == variance == lambda/mu."""

    N_SEEDS = 120
    EXPECTED = 20.0

    def _final_counts(self, simulator_factory):
        out = []
        for seed in range(self.N_SEEDS):
            simulator = simulator_factory(seed)
            simulator.advance(12.0)  # >> relaxation time (1/mu)
            out.append(simulator.counts["X"])
        return out

    def _check(self, values):
        mean = statistics.mean(values)
        variance = statistics.variance(values)
        # mean of Poisson(20) over 120 samples: SE = sqrt(20/120) ~ 0.41
        assert mean == pytest.approx(self.EXPECTED, abs=3.5 * 0.41)
        # variance ~ mean for a Poisson (Fano factor 1)
        assert variance / mean == pytest.approx(1.0, abs=0.45)

    def test_direct_method(self):
        net = immigration_death()
        self._check(self._final_counts(
            lambda seed: FlatSimulator(net, seed=seed)))

    def test_first_reaction_method(self):
        net = immigration_death()
        self._check(self._final_counts(
            lambda seed: FirstReactionSimulator(net, seed=1000 + seed)))


class TestExponentialWaitingTimes:
    def test_first_event_time_is_exponential(self):
        """For 0 -> X at rate lambda, the first event time ~ Exp(lambda):
        check mean and the memorylessness quantile (median = ln2 / k)."""
        rate = 4.0
        net = ReactionNetwork("birth", {"X": 0}, [
            Reaction.make("in", "", "X", Constant(rate))])
        times = []
        for seed in range(300):
            simulator = FlatSimulator(net, seed=seed)
            simulator.step()
            times.append(simulator.time)
        mean = statistics.mean(times)
        assert mean == pytest.approx(1.0 / rate, rel=0.2)
        median = statistics.median(times)
        assert median == pytest.approx(math.log(2) / rate, rel=0.25)


class TestLinearDecayMoments:
    def test_pure_death_is_binomial_thinning(self):
        """X(0)=n0 decaying at rate k: X(t) ~ Binomial(n0, e^-kt)."""
        n0, k, t = 200, 1.0, 0.7
        survival = math.exp(-k * t)
        net = ReactionNetwork("decay", {"X": n0}, [
            Reaction.make("d", "X", "", k)])
        finals = []
        for seed in range(150):
            simulator = FlatSimulator(net, seed=seed)
            simulator.advance(t)
            finals.append(simulator.counts["X"])
        mean = statistics.mean(finals)
        variance = statistics.variance(finals)
        expected_mean = n0 * survival
        expected_var = n0 * survival * (1 - survival)
        assert mean == pytest.approx(expected_mean, rel=0.05)
        assert variance == pytest.approx(expected_var, rel=0.40)


class TestCWCEngineStatistics:
    def test_cwc_engine_poisson_stationarity(self):
        """The tree engine must sample the same stationary law."""
        from repro.cwc.multiset import Multiset
        from repro.cwc.rule import Pattern, RHS
        model = Model("imm-death", term="",
                      rules=[
                          Rule("in", "top", Pattern(),
                               RHS(atoms=Multiset({"X": 1})),
                               Constant(20.0)),
                          Rule.flat("out", "X", "", 1.0),
                      ],
                      observables=["X"])
        finals = []
        for seed in range(80):
            simulator = CWCSimulator(model, seed=seed)
            simulator.advance(12.0)
            finals.append(simulator.observe()[0])
        mean = statistics.mean(finals)
        assert mean == pytest.approx(20.0, abs=2.0)
        assert statistics.variance(finals) / mean == pytest.approx(
            1.0, abs=0.5)
