"""Batched tau-leaping: leap primitives, hybrid switching, properties.

Three layers, mirroring ``test_kernels.py``:

* the leap *primitives* -- plain-Python oracle loops vs the vectorized
  numpy references (and, when installed, the numba-jitted loops) must
  agree bit for bit on random states;
* the *engine* -- ``method="tau"|"hybrid"`` runs must preserve the
  invariants exact SSA guarantees structurally (no negative counts,
  conservation laws, quantum boundaries honoured, permanent
  exhaustion) even though leaping is only distribution-equivalent;
* the *plumbing* -- validation, per-row stream permutation invariance,
  pickling, step accounting.

Distribution-level equivalence with exact SSA lives in
``test_tau_equivalence.py`` (KS suite).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cwc import Reaction, ReactionNetwork
from repro.cwc.batch import BatchFlatSimulator, CompiledNetwork
from repro.cwc.kernels import (
    _leap_fire,
    _leap_tau,
    kernel_available,
    make_kernel,
    numpy_leap_fire,
    numpy_leap_tau,
)
from repro.models import (
    lotka_volterra_network,
    mm_enzyme_network,
    neurospora_network,
)

needs_numba = pytest.mark.skipif(not kernel_available("numba"),
                                 reason="numba is not installed")


def third_order_network() -> ReactionNetwork:
    """Trimerisation: exercises order-3 combinatorics and a +3 scatter."""
    return ReactionNetwork("trimer", {"a": 60, "b": 20}, [
        Reaction.make("form", "a + a + a", "t", 1e-4),
        Reaction.make("decay", "t", "a + a + a", 0.5),
        Reaction.make("swap", "a + b", "b + b", 0.01),
    ])


def networks() -> list[ReactionNetwork]:
    return [neurospora_network(omega=20), third_order_network(),
            lotka_volterra_network(omega=50)]


def random_states(compiled: CompiledNetwork, m: int = 64,
                  seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 40, size=(m, compiled.n_species)
                        ).astype(np.float64)


# ---------------------------------------------------------------------------
# leap primitives: plain loops vs numpy references (vs numba)
# ---------------------------------------------------------------------------

class TestLeapPrimitiveBitIdentity:
    def test_plain_tau_matches_numpy(self):
        for network in networks():
            compiled = CompiledNetwork(network)
            X = random_states(compiled)
            a = compiled.propensities_T(X)
            stoich = compiled.stoich.astype(np.float64)
            expected = numpy_leap_tau(a, X, stoich, 0.03)
            out = np.empty(X.shape[0])
            _leap_tau(np.ascontiguousarray(a), X, stoich, 0.03, out)
            assert out.tobytes() == expected.tobytes()

    def test_plain_fire_matches_numpy(self):
        for network in networks():
            compiled = CompiledNetwork(network)
            X = random_states(compiled, seed=7)
            rng = np.random.default_rng(3)
            fires = rng.integers(
                0, 6, size=(X.shape[0], compiled.n_reactions)
            ).astype(np.float64)
            stoich = compiled.stoich.astype(np.float64)
            X_np = X.copy()
            ok_np = numpy_leap_fire(X_np, stoich, fires)
            X_pl = X.copy()
            ok_pl = np.empty(X.shape[0], dtype=np.bool_)
            _leap_fire(X_pl, stoich, np.ascontiguousarray(fires), ok_pl)
            assert ok_pl.tobytes() == ok_np.tobytes()
            assert X_pl.tobytes() == X_np.tobytes()
            # some rows must actually have been rejected for the
            # comparison to mean anything
            assert not ok_np.all()
            assert ok_np.any()

    def test_tau_inf_when_nothing_fires(self):
        compiled = CompiledNetwork(third_order_network())
        X = np.zeros((4, compiled.n_species))
        a = compiled.propensities_T(X)
        tau = numpy_leap_tau(a, X, compiled.stoich.astype(np.float64),
                             0.03)
        assert np.isinf(tau).all()

    def test_rejected_rows_left_untouched(self):
        """A rejected row must keep its exact pre-leap state (the
        engine redraws from it after halving tau)."""
        compiled = CompiledNetwork(third_order_network())
        X = random_states(compiled, seed=5)
        fires = np.full((X.shape[0], compiled.n_reactions), 50.0)
        before = X.copy()
        ok = numpy_leap_fire(X, compiled.stoich.astype(np.float64),
                             fires)
        rejected = ~ok
        assert rejected.any()
        assert X[rejected].tobytes() == before[rejected].tobytes()

    @needs_numba
    def test_numba_tau_matches_numpy(self):
        for network in networks():
            compiled = CompiledNetwork(network)
            kernel = make_kernel("numba", compiled)
            X = random_states(compiled)
            a = compiled.propensities_T(X)
            stoich = compiled.stoich.astype(np.float64)
            expected = numpy_leap_tau(a, X, stoich, 0.03)
            got = kernel.leap_tau(a, X, stoich, 0.03)
            assert got.tobytes() == expected.tobytes()

    @needs_numba
    def test_numba_fire_matches_numpy(self):
        for network in networks():
            compiled = CompiledNetwork(network)
            kernel = make_kernel("numba", compiled)
            X = random_states(compiled, seed=7)
            rng = np.random.default_rng(3)
            fires = rng.integers(
                0, 6, size=(X.shape[0], compiled.n_reactions)
            ).astype(np.float64)
            stoich = compiled.stoich.astype(np.float64)
            X_np = X.copy()
            ok_np = numpy_leap_fire(X_np, stoich, fires)
            X_nb = X.copy()
            ok_nb = kernel.leap_fire(X_nb, stoich, fires)
            assert ok_nb.tobytes() == ok_np.tobytes()
            assert X_nb.tobytes() == X_np.tobytes()


# ---------------------------------------------------------------------------
# engine invariants under leaping
# ---------------------------------------------------------------------------

class TestLeapEngineInvariants:
    @given(st.integers(0, 2 ** 16), st.sampled_from(["tau", "hybrid"]))
    @settings(max_examples=15, deadline=None)
    def test_counts_never_negative(self, seed, method):
        sim = BatchFlatSimulator(lotka_volterra_network(omega=100), 16,
                                 seed=seed, method=method)
        for _ in range(4):
            sim.advance(0.05)
            assert (sim.counts >= 0).all()

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_conservation_under_leaping(self, seed):
        """Leaps scatter whole reaction channels; the enzyme network's
        conservation laws (E + ES, S + ES + P) must hold exactly."""
        network = mm_enzyme_network(omega=100)
        sim = BatchFlatSimulator(network, 8, seed=seed, method="tau")
        index = sim.compiled.species_index
        e0 = sim.counts[:, index["E"]] + sim.counts[:, index["ES"]]
        s0 = (sim.counts[:, index["S"]] + sim.counts[:, index["ES"]]
              + sim.counts[:, index["P"]])
        sim.advance(2.0)
        assert (sim.counts[:, index["E"]]
                + sim.counts[:, index["ES"]] == e0).all()
        assert (sim.counts[:, index["S"]] + sim.counts[:, index["ES"]]
                + sim.counts[:, index["P"]] == s0).all()

    def test_quantum_boundaries_honoured(self):
        sim = BatchFlatSimulator(lotka_volterra_network(omega=200), 12,
                                 seed=4, method="tau")
        targets = sim.advance(0.25)
        assert np.allclose(targets, 0.25)
        assert (sim.times == 0.25).all()

    def test_rejection_halving_terminates(self):
        """Force every row to leap (tiny threshold) on a tiny-count
        decay network: near-exhaustion leaps keep rejecting, tau keeps
        halving, and the MAX_LEAP_ATTEMPTS fallback must still land
        every row on its target."""
        network = ReactionNetwork("decay", {"A": 5},
                                  [Reaction.make("d", "A", "", 50.0)])
        sim = BatchFlatSimulator(network, 32, seed=9, method="tau",
                                 ssa_threshold=1e-9, epsilon=0.5)
        sim.advance(10.0)
        assert (sim.times == 10.0).all()
        assert (sim.counts == 0).all()
        assert sim.exhausted.all()

    def test_exact_fallback_triggers_on_small_systems(self):
        """At tiny populations the CGP tau is worth less than
        ssa_threshold SSA steps, so the tau method must take exact
        steps (that is the hybrid safety net working)."""
        network = lotka_volterra_network(omega=5)
        sim = BatchFlatSimulator(network, 16, seed=2, method="tau")
        sim.advance(0.5)
        assert sim.exact_steps.sum() > 0

    def test_leaps_dominate_on_large_systems(self):
        sim = BatchFlatSimulator(lotka_volterra_network(omega=1000), 8,
                                 seed=2, method="tau")
        sim.advance(0.1)
        assert sim.leaps.sum() > 0
        # the whole point: firings vastly outnumber leap iterations
        assert sim.steps.sum() > 50 * sim.leaps.sum()

    def test_exhaustion_is_permanent(self):
        network = ReactionNetwork("decay", {"A": 3},
                                  [Reaction.make("d", "A", "", 1.0)])
        sim = BatchFlatSimulator(network, 6, seed=0, method="tau")
        sim.advance(100.0)
        assert sim.exhausted.all()
        assert (sim.counts == 0).all()
        sim.advance(1.0)  # exhausted rows jump straight to the target
        assert (sim.times == 101.0).all()

    def test_hybrid_gate_forces_exact_path_bitwise(self):
        """With an unreachable population gate no row ever leaps, and
        the hybrid loop's exact fallback must reproduce the exact
        method's trajectories bit for bit (same draws, same order)."""
        network = lotka_volterra_network(omega=50)
        exact = BatchFlatSimulator(network, 16, seed=7, method="exact")
        gated = BatchFlatSimulator(network, 16, seed=7, method="hybrid",
                                   pop_threshold=1e12)
        for _ in range(3):
            exact.advance(0.02)
            gated.advance(0.02)
        assert gated.leaps.sum() == 0
        assert gated.counts.tobytes() == exact.counts.tobytes()
        assert gated.times.tobytes() == exact.times.tobytes()
        assert gated.steps.tobytes() == exact.steps.tobytes()
        assert gated.exact_steps.sum() == gated.steps.sum()

    def test_hybrid_leaps_on_large_populations(self):
        sim = BatchFlatSimulator(lotka_volterra_network(omega=1000), 8,
                                 seed=3, method="hybrid")
        sim.advance(0.1)
        assert sim.leaps.sum() > 0


# ---------------------------------------------------------------------------
# plumbing: streams, validation, pickling
# ---------------------------------------------------------------------------

class TestLeapPlumbing:
    def test_row_permutation_invariance_with_streams(self):
        """Per-row rng streams make each row's draws its own: permuting
        the rows (streams and rates alike) must permute the results
        bitwise -- the property the fused sweep plane leans on."""
        network = lotka_volterra_network(omega=200)
        compiled = CompiledNetwork(network)
        n = 8
        seeds = [100 + i for i in range(n)]
        base = compiled.rates_for()
        rates = np.stack([base * (1.0 + 0.05 * i) for i in range(n)])
        perm = np.array([5, 2, 7, 0, 3, 6, 1, 4])

        def run(order):
            sim = BatchFlatSimulator(
                compiled, n, method="tau",
                row_rates=rates[order],
                rng_streams=[(1, seeds[i]) for i in order])
            sim.advance(0.2)
            return sim

        a = run(np.arange(n))
        b = run(perm)
        assert a.counts[perm].tobytes() == b.counts.tobytes()
        assert a.steps[perm].tobytes() == b.steps.tobytes()
        assert a.leaps[perm].tobytes() == b.leaps.tobytes()

    def test_validation(self):
        network = lotka_volterra_network(omega=10)
        with pytest.raises(ValueError, match="unknown method"):
            BatchFlatSimulator(network, 2, method="leapfrog")
        with pytest.raises(ValueError, match="epsilon"):
            BatchFlatSimulator(network, 2, method="tau", epsilon=1.5)
        with pytest.raises(ValueError, match="ssa_threshold"):
            BatchFlatSimulator(network, 2, method="tau",
                               ssa_threshold=0.0)
        with pytest.raises(ValueError, match="pop_threshold"):
            BatchFlatSimulator(network, 2, method="hybrid",
                               pop_threshold=-1.0)

    def test_pickle_roundtrip_preserves_method(self):
        sim = BatchFlatSimulator(lotka_volterra_network(omega=100), 4,
                                 seed=1, method="hybrid", epsilon=0.05,
                                 ssa_threshold=5.0, pop_threshold=20.0)
        sim.advance(0.05)
        clone = pickle.loads(pickle.dumps(sim))
        assert clone.method == "hybrid"
        assert clone.epsilon == 0.05
        assert clone.ssa_threshold == 5.0
        assert clone.pop_threshold == 20.0
        assert clone.counts.tobytes() == sim.counts.tobytes()
        # both must keep advancing identically (same generator state)
        sim.advance(0.05)
        clone.advance(0.05)
        assert clone.counts.tobytes() == sim.counts.tobytes()

    def test_exact_method_unchanged_by_default(self):
        """method defaults to "exact" and the historical trajectories
        are untouched (the bit-pinned path did not move)."""
        network = neurospora_network(omega=20)
        old = BatchFlatSimulator(network, 8, seed=42)
        new = BatchFlatSimulator(network, 8, seed=42, method="exact")
        old.advance(1.0)
        new.advance(1.0)
        assert old.counts.tobytes() == new.counts.tobytes()

    @needs_numba
    def test_numba_engine_runs_leap_methods(self):
        """The jitted leap primitives drive the same engine loop; the
        run must finish on target with the standard invariants (RNG
        stays in Python, but rejection cascades may diverge from numpy
        only if the primitives differ -- they are bit-identical, so
        the whole trajectory matches too)."""
        network = lotka_volterra_network(omega=300)
        a = BatchFlatSimulator(network, 8, seed=6, method="hybrid",
                               kernel="numpy")
        b = BatchFlatSimulator(network, 8, seed=6, method="hybrid",
                               kernel="numba")
        a.advance(0.1)
        b.advance(0.1)
        assert b.counts.tobytes() == a.counts.tobytes()
        assert b.steps.tobytes() == a.steps.tobytes()
        assert b.leaps.tobytes() == a.leaps.tobytes()
