"""Distribution equivalence: leaped ensembles vs exact batch SSA.

Tau-leaping is *not* bit-identical to the direct method -- it is an
epsilon-controlled approximation of the same jump process -- so the
correctness claim is statistical: the marginal distribution of every
observable, at mid-trajectory and at the terminal time, must be
indistinguishable from the exact ensemble's.  A hand-rolled two-sample
Kolmogorov-Smirnov test (no scipy: the asymptotic critical value
``c(alpha) = sqrt(-ln(alpha/2) / 2)`` is three lines) checks the full
marginals; mean/variance moment checks catch gross bias the KS test
could in principle miss at these sample sizes.

The matrix covers both test models (Lotka-Volterra, Michaelis-Menten
enzyme) at two omega scalings each -- leaping must stay faithful both
where it pays (large omega) and where the exact fallback carries it
(small omega) -- for both leap methods, on every installed kernel.

``alpha = 1e-3`` with fixed seeds: the suite is deterministic, and the
critical distance at the sample sizes used (~0.17 at n = m = 256)
leaves a wide margin over the observed distances for a correct
implementation while still failing loudly for real bias (a wrong
stoichiometry scatter or tau bound lands far above it).
"""

import math

import numpy as np
import pytest

from repro.cwc.batch import BatchFlatSimulator
from repro.cwc.kernels import KERNEL_NAMES, kernel_available
from repro.models import lotka_volterra_network, mm_enzyme_network

KERNELS = [k for k in KERNEL_NAMES if kernel_available(k)]

N_TRAJECTORIES = 256
ALPHA = 1e-3

#: model -> (factory, omegas, (t_mid, t_end))
MODELS = {
    "lotka-volterra": (lotka_volterra_network, (50.0, 400.0),
                       (0.1, 0.25)),
    "enzyme": (mm_enzyme_network, (30.0, 300.0), (0.5, 1.5)),
}


# ---------------------------------------------------------------------------
# hand-rolled two-sample KS test
# ---------------------------------------------------------------------------

def ks_statistic(x: np.ndarray, y: np.ndarray) -> float:
    """sup_t |F_x(t) - F_y(t)| over the pooled sample grid (right-
    continuous empirical CDFs, so ties -- counts are discrete -- are
    handled exactly)."""
    x = np.sort(np.asarray(x, dtype=float))
    y = np.sort(np.asarray(y, dtype=float))
    grid = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, grid, side="right") / x.size
    cdf_y = np.searchsorted(y, grid, side="right") / y.size
    return float(np.abs(cdf_x - cdf_y).max())


def ks_critical(n: int, m: int, alpha: float = ALPHA) -> float:
    """Asymptotic two-sample rejection distance at level ``alpha``."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


def assert_same_distribution(x: np.ndarray, y: np.ndarray,
                             label: str) -> None:
    d = ks_statistic(x, y)
    crit = ks_critical(x.size, y.size)
    assert d <= crit, (f"{label}: KS distance {d:.4f} > critical "
                       f"{crit:.4f} (alpha={ALPHA})")


class TestKSMachinery:
    """The test statistic itself has to be right before it can vouch
    for the engine."""

    def test_identical_samples_have_zero_distance(self):
        x = np.array([1.0, 2.0, 2.0, 5.0])
        assert ks_statistic(x, x.copy()) == 0.0

    def test_disjoint_samples_have_distance_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10)) == 1.0

    def test_known_distance(self):
        # F_x jumps to 1 at 0; F_y jumps 0.5 at 0 and 1 at 1
        x = np.zeros(4)
        y = np.array([0.0, 0.0, 1.0, 1.0])
        assert ks_statistic(x, y) == pytest.approx(0.5)

    def test_rejects_shifted_distribution(self):
        rng = np.random.default_rng(0)
        x = rng.poisson(100.0, size=400).astype(float)
        y = rng.poisson(130.0, size=400).astype(float)
        assert ks_statistic(x, y) > ks_critical(400, 400)

    def test_accepts_same_distribution(self):
        rng = np.random.default_rng(1)
        x = rng.poisson(100.0, size=400).astype(float)
        y = rng.poisson(100.0, size=400).astype(float)
        assert ks_statistic(x, y) <= ks_critical(400, 400)


# ---------------------------------------------------------------------------
# ensembles
# ---------------------------------------------------------------------------

_exact_cache: dict = {}


def run_ensemble(model_key: str, omega: float, method: str,
                 kernel: str, seed: int):
    """(mid, terminal) observable matrices, ``(n, n_observables)``."""
    factory, _, (t_mid, t_end) = MODELS[model_key]
    sim = BatchFlatSimulator(factory(omega=omega), N_TRAJECTORIES,
                             seed=seed, kernel=kernel, method=method)
    sim.advance(t_mid)
    mid = sim.observe_all().copy()
    sim.advance(t_end - t_mid)
    return sim, mid, sim.observe_all().copy()


def exact_ensemble(model_key: str, omega: float):
    """The exact reference, cached: the same ensemble serves every
    (method, kernel) comparison (the reference distribution does not
    depend on who is being tested against it)."""
    key = (model_key, omega)
    if key not in _exact_cache:
        _, mid, term = run_ensemble(model_key, omega, "exact", "numpy",
                                    seed=1000)
        _exact_cache[key] = (mid, term)
    return _exact_cache[key]


def model_cases():
    for model_key, (_, omegas, _times) in MODELS.items():
        for omega in omegas:
            yield model_key, omega


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("method", ["tau", "hybrid"])
@pytest.mark.parametrize("model_key,omega", list(model_cases()))
class TestDistributionEquivalence:
    def test_marginals_match_exact(self, model_key, omega, method,
                                   kernel):
        if kernel == "cupy" and not kernel_available("cupy"):
            pytest.skip("cupy not installed")
        exact_mid, exact_term = exact_ensemble(model_key, omega)
        sim, mid, term = run_ensemble(model_key, omega, method, kernel,
                                      seed=2000)
        names = sim.observable_names
        for cut_label, got, ref in (("mid", mid, exact_mid),
                                    ("terminal", term, exact_term)):
            for c, name in enumerate(names):
                assert_same_distribution(
                    got[:, c], ref[:, c],
                    f"{model_key} omega={omega} {method}/{kernel} "
                    f"{cut_label} {name}")

    def test_moments_match_exact(self, model_key, omega, method, kernel):
        """Terminal mean within 3 pooled standard errors and variance
        within a factor of two per observable -- a blunt instrument,
        but one a biased leap cannot slip past."""
        if kernel == "cupy" and not kernel_available("cupy"):
            pytest.skip("cupy not installed")
        _, exact_term = exact_ensemble(model_key, omega)
        _, _, term = run_ensemble(model_key, omega, method, kernel,
                                  seed=3000)
        for c in range(term.shape[1]):
            ref, got = exact_term[:, c], term[:, c]
            sem = math.sqrt((ref.var(ddof=1) + got.var(ddof=1))
                            / ref.size)
            tol = max(3.0 * sem, 0.02 * max(abs(ref.mean()), 1.0))
            assert abs(got.mean() - ref.mean()) <= tol, (
                f"obs {c}: mean {got.mean():.2f} vs {ref.mean():.2f}")
            if ref.var(ddof=1) > 1.0:
                ratio = got.var(ddof=1) / ref.var(ddof=1)
                assert 0.5 <= ratio <= 2.0, (
                    f"obs {c}: variance ratio {ratio:.2f}")


class TestLeapActuallyLeaps:
    """Guard against the equivalence suite passing vacuously: at the
    large-omega points the leap methods must actually be leaping (if a
    regression silently forced the exact fallback everywhere, the KS
    suite would still pass -- this would not)."""

    @pytest.mark.parametrize("method", ["tau", "hybrid"])
    def test_large_omega_uses_leaps(self, method):
        sim, _, _ = run_ensemble("lotka-volterra", 400.0, method,
                                 "numpy", seed=2000)
        assert sim.leaps.sum() > 0
        assert sim.steps.sum() > 10 * (sim.leaps.sum()
                                       + sim.exact_steps.sum())
