"""Term tree semantics."""

import pytest

from repro.cwc.multiset import Multiset
from repro.cwc.term import TOP, Compartment, Term
from repro.cwc.parser import parse_term


def cell(content_atoms="", wrap="m", label="cell"):
    return Compartment(label, Multiset.from_string(wrap),
                       Term(Multiset.from_string(content_atoms)))


class TestStructure:
    def test_top_label(self):
        assert Term().label() == TOP

    def test_compartment_content_label(self):
        comp = cell()
        assert comp.content.label() == "cell"

    def test_add_remove_compartment(self):
        term = Term()
        comp = term.add_compartment(cell())
        assert comp.parent is term
        term.remove_compartment(comp)
        assert term.compartments == []
        assert comp.parent is None

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            Term().remove_compartment(cell())

    def test_remove_is_identity_based(self):
        term = Term()
        first, second = cell("a"), cell("a")
        term.add_compartment(first)
        term.add_compartment(second)
        term.remove_compartment(second)
        assert term.compartments == [first]

    def test_walk_terms_depth_first(self):
        term = parse_term("a (m | b (n | c):inner):outer")
        labels = [t.label() for t in term.walk_terms()]
        assert labels == [TOP, "outer", "inner"]

    def test_walk_compartments(self):
        term = parse_term("(m | (n | ):inner):outer ( | ):solo")
        labels = [c.label for c in term.walk_compartments()]
        assert labels == ["outer", "inner", "solo"]

    def test_depth(self):
        assert Term().depth() == 0
        assert parse_term("(m | a):cell").depth() == 1
        assert parse_term("(m | (n | ):inner):outer").depth() == 2

    def test_size_counts_wraps(self):
        term = parse_term("a a (m m | b):cell")
        assert term.size() == 5


class TestCounting:
    def test_local_count(self):
        term = parse_term("2*a (m | 3*a):cell")
        assert term.count("a") == 2

    def test_recursive_count_includes_wraps(self):
        term = parse_term("a (a | a):cell")
        assert term.count("a", recursive=True) == 3

    def test_count_by_label(self):
        term = parse_term("a (m | 2*a (n | 5*a):nucleus):cell")
        assert term.count("a", recursive=True, label="cell") == 2
        assert term.count("a", recursive=True, label="nucleus") == 5
        assert term.count("a", recursive=True, label=TOP) == 1


class TestDissolve:
    def test_dissolve_releases_everything(self):
        term = parse_term("(m | 2*a (n | b):inner):outer")
        outer = term.compartments[0]
        term.dissolve_compartment(outer)
        assert term.atoms.count("m") == 1  # wrap released
        assert term.atoms.count("a") == 2  # content atoms released
        assert len(term.compartments) == 1  # inner promoted
        assert term.compartments[0].label == "inner"


class TestEqualityAndCopy:
    def test_equality_ignores_compartment_order(self):
        first = parse_term("(m | a):x (n | b):y")
        second = parse_term("(n | b):y (m | a):x")
        assert first == second
        assert hash(first) == hash(second)

    def test_equality_counts_duplicate_compartments(self):
        one = parse_term("(m | a):x")
        two = parse_term("(m | a):x (m | a):x")
        assert one != two

    def test_copy_is_deep(self):
        term = parse_term("a (m | b):cell")
        clone = term.copy()
        clone.atoms.add("a")
        clone.compartments[0].content.atoms.add("b")
        assert term.count("a") == 1
        assert term.compartments[0].content.count("b") == 1
        assert term != clone

    def test_copy_preserves_equality(self):
        term = parse_term("2*a (m | b (n | c):i):o")
        assert term.copy() == term
