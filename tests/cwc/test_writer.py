"""Model serialisation: write -> parse round trips."""

import pytest

from repro.cwc import CWCSimulator, Model, Rule, parse_model, parse_term
from repro.cwc.writer import write_model, write_term
from repro.models import neurospora_cwc_model


class TestWriteTerm:
    def test_atoms(self):
        assert write_term(parse_term("2*a b")) == "2*a b"

    def test_compartment(self):
        text = "(m | 2*a):cell"
        assert write_term(parse_term(text)) == text

    def test_nested_roundtrip(self):
        term = parse_term("x (m | a (n | 3*b):inner):outer")
        assert parse_term(write_term(term)) == term


class TestWriteModel:
    MODEL = """
model demo
term: 10*a (m | b):cell
rule bind @ 0.25 : a a => d
rule enter @ 0.5 : a $(m | ):cell => $1(m | a)
rule grow @ mm(2.0, 0.5, a, 1.0) in cell : a => a a
rule burst @ 1.0 : $(m | b):cell => dissolve $1
rule make @ hill_rep(2.0, 1.0, 4.0, d, 1.0) : => a
observable dimers = d
observable a_in = a in cell
"""

    def test_roundtrip_equivalence(self):
        original = parse_model(self.MODEL)
        reparsed = parse_model(write_model(original))
        assert reparsed.name == original.name
        assert reparsed.term == original.term
        assert reparsed.observable_names == original.observable_names
        assert len(reparsed.rules) == len(original.rules)
        for a, b in zip(original.rules, reparsed.rules):
            assert a.name == b.name
            assert a.context == b.context
            assert a.lhs == b.lhs
            assert a.rhs == b.rhs
            assert a.rate == b.rate

    def test_roundtrip_simulates_identically(self):
        original = parse_model(self.MODEL)
        reparsed = parse_model(write_model(original))
        a = CWCSimulator(original, seed=3).run(5.0, 1.0)
        b = CWCSimulator(reparsed, seed=3).run(5.0, 1.0)
        assert a.samples == b.samples

    def test_neurospora_cwc_roundtrips(self):
        model = neurospora_cwc_model(omega=20)
        reparsed = parse_model(write_model(model))
        a = CWCSimulator(model, seed=1).run(2.0, 1.0)
        b = CWCSimulator(reparsed, seed=1).run(2.0, 1.0)
        assert a.samples == b.samples

    def test_arbitrary_callable_rejected(self):
        model = Model("bad", term="a",
                      rules=[Rule.flat("r", "a", "b", lambda ctx: 1.0)])
        with pytest.raises(ValueError, match="textual form"):
            write_model(model)
