"""The virtual cluster: distributed == shared-memory, traffic measured."""

import pytest

from repro.distributed import DistributedWorkflow, NetworkLink, VirtualHost
from repro.perfsim.platform import EC2_NETWORK, INFINIBAND_IPOIB
from repro.pipeline import WorkflowConfig, run_workflow


def config(**overrides):
    base = dict(n_simulations=6, t_end=6.0, sample_every=0.5, quantum=2.0,
                n_sim_workers=3, n_stat_workers=1, window_size=5, seed=0)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestNetworkLink:
    def test_roundtrip_preserves_object(self):
        link = NetworkLink("test")
        assert link.roundtrip({"a": (1, 2)}) == {"a": (1, 2)}

    def test_meter_accumulates(self):
        link = NetworkLink("test", spec=INFINIBAND_IPOIB)
        link.send([1, 2, 3])
        link.send("x")
        assert link.meter.messages == 2
        assert link.meter.bytes > 0
        assert link.meter.modeled_time > 2 * INFINIBAND_IPOIB.latency * 0.99
        assert link.meter.mean_size() == link.meter.bytes / 2


class TestDistributedWorkflow:
    def test_results_identical_to_shared_memory(self, neurospora_small):
        """Serialisation boundaries must not change a single number: the
        distributed run reproduces the shared-memory run exactly."""
        cfg = config()
        local = run_workflow(neurospora_small, cfg)
        distributed = DistributedWorkflow(
            neurospora_small, config(),
            hosts=[VirtualHost("h0", lanes=2), VirtualHost("h1", lanes=2)],
        ).run()
        local_stats = [(s.grid_index, s.mean, s.variance)
                       for s in local.cut_statistics()]
        remote_stats = [(s.grid_index, s.mean, s.variance)
                        for s in distributed.workflow.cut_statistics()]
        assert local_stats == remote_stats

    def test_traffic_is_measured(self, neurospora_small):
        result = DistributedWorkflow(
            neurospora_small, config(),
            hosts=[VirtualHost("h0", lanes=1),
                   VirtualHost("h1", lanes=1, channel=EC2_NETWORK)],
        ).run()
        assert result.total_messages() > 0
        assert result.total_bytes() > 0
        # every task quantum crossed down and up
        down = sum(l.meter.messages for l in result.downlinks.values())
        up = sum(l.meter.messages for l in result.uplinks.values())
        assert down > 0 and up >= down  # results + feedback go up

    def test_tasks_have_host_affinity(self, neurospora_small):
        hosts = [VirtualHost("h0", lanes=1), VirtualHost("h1", lanes=1)]
        result = DistributedWorkflow(neurospora_small, config(),
                                     hosts=hosts).run()
        # round-robin over 2 lanes: both hosts saw traffic
        assert result.downlinks["h0"].meter.messages > 0
        assert result.downlinks["h1"].meter.messages > 0

    def test_single_host_cluster(self, neurospora_small):
        result = DistributedWorkflow(
            neurospora_small, config(), hosts=[VirtualHost("only", lanes=2)],
        ).run()
        assert result.workflow.n_windows >= 1

    def test_needs_hosts(self, neurospora_small):
        with pytest.raises(ValueError):
            DistributedWorkflow(neurospora_small, config(), hosts=[])

    def test_lane_validation(self):
        with pytest.raises(ValueError):
            VirtualHost("bad", lanes=0)

    def test_trace_records_wire_counters(self, neurospora_small):
        """``--trace`` on the virtual cluster: per-host wire traffic and
        the sim counters land in the run report, and the byte counts
        agree with the link meters."""
        result = DistributedWorkflow(
            neurospora_small, config(trace=True),
            hosts=[VirtualHost("h0", lanes=1), VirtualHost("h1", lanes=1)],
        ).run()
        report = result.workflow.trace_report
        assert report is not None
        counters = report.counters
        assert counters["net.messages"] == result.total_messages()
        assert counters["net.bytes"] == result.total_bytes()
        assert (counters["net.host.h0.bytes"] + counters["net.host.h1.bytes"]
                == counters["net.bytes"])
        assert counters["sim.quanta"] > 0
        assert counters["sim.steps"] > 0
