"""Coalesced result transport: ResultBlock over frames and shared pages.

The sweep plane ships one :class:`~repro.sim.task.ResultBlock` per
quantum instead of per-member results.  These tests pin the transport
contract: blocks round-trip bit-identically through pickles, the
cluster's v2 out-of-band frames (any mix of block shapes, any frame
order, truncation detected) and the processes backend's shared-memory
result ring (zero leaked segments after release).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.message import (
    FrameError,
    decode_frame,
    decode_stream,
    encode_frame_oob,
)
from repro.distributed.net import ResultMsg
from repro.distributed.shm import (leaked_segments, make_prefix,
                                   map_results, publish_results,
                                   sweep_orphans)
from repro.sim.task import QuantumResult, ResultBlock


def make_block(n_members=5, n_grid=4, n_obs=3, grid_start=2,
               done=False, seed=0, first_id=10):
    rng = np.random.default_rng(seed)
    return ResultBlock(
        task_ids=range(first_id, first_id + n_members),
        grid_start=grid_start,
        times=np.arange(n_grid, dtype=float) * 0.5,
        values=rng.random((n_members, n_grid, n_obs)),
        end_times=rng.random(n_members) * 10,
        steps=rng.integers(0, 1000, n_members),
        done=done)


def assert_blocks_equal(a: ResultBlock, b: ResultBlock) -> None:
    assert b.task_ids == a.task_ids
    assert b.grid_start == a.grid_start
    assert b.done == a.done
    assert b._times.tobytes() == a._times.tobytes()
    assert b._values.tobytes() == a._values.tobytes()
    assert np.array_equal(b._end_times, a._end_times)
    assert np.array_equal(b._steps, a._steps)


class TestResultBlock:
    def test_len_counts_total_samples(self):
        block = make_block(n_members=5, n_grid=4)
        assert len(block) == 20
        assert block.n_members == 5 and block.n_grid == 4

    def test_empty_done_marker_is_truthy_to_filters(self):
        block = make_block(n_members=3, n_grid=0, done=True)
        # the engine forwards when `len(r) or r.done` -- pin both halves
        assert len(block) == 0 and block.done

    def test_unpack_yields_zero_copy_views(self):
        block = make_block()
        members = list(block.unpack())
        assert [m.task_id for m in members] == list(block.task_ids)
        for i, member in enumerate(members):
            assert member._values.base is block._values
            assert np.array_equal(member._values, block._values[i])
            assert member._times is block._times
            assert member.grid_start == block.grid_start

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResultBlock(range(3), 0, np.zeros(2), np.zeros((2, 2, 1)),
                        np.zeros(3), np.zeros(3, dtype=np.int64), False)
        with pytest.raises(ValueError):
            ResultBlock(range(2), 0, np.zeros(3), np.zeros((2, 2, 1)),
                        np.zeros(2), np.zeros(2, dtype=np.int64), False)

    def test_pickle_roundtrip(self):
        block = make_block(done=True)
        assert_blocks_equal(block, pickle.loads(pickle.dumps(block)))


class TestCoalescedFrames:
    def test_result_msg_roundtrip(self):
        msg = ResultMsg(3, None, (make_block(),))
        clone, rest = decode_frame(encode_frame_oob(msg))
        assert rest == b""
        assert_blocks_equal(msg.results[0], clone.results[0])

    def test_mixed_members_and_blocks(self):
        """A wire message may carry blocks and loose member results."""
        loose = QuantumResult(99, None, time=1.0, steps=7, done=False,
                              grid_start=0,
                              times=np.array([0.0, 0.5]),
                              values=np.ones((2, 3)))
        msg = ResultMsg(0, None, (make_block(), loose))
        clone, _ = decode_frame(encode_frame_oob(msg))
        assert_blocks_equal(msg.results[0], clone.results[0])
        assert clone.results[1]._values.tobytes() == \
            loose._values.tobytes()

    def test_truncated_frame_detected(self):
        frame = encode_frame_oob(ResultMsg(0, None, (make_block(),)))
        with pytest.raises(FrameError):
            decode_frame(frame[:-5])

    @given(shapes=st.lists(
        st.tuples(st.integers(1, 8), st.integers(0, 6),
                  st.integers(1, 4), st.booleans()),
        min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_any_block_mix_roundtrips(self, shapes):
        """Mixed block sizes -- including empty quanta -- in one
        message survive the out-of-band path byte for byte."""
        blocks = tuple(
            make_block(n_members=m, n_grid=g, n_obs=o, done=done,
                       seed=i, first_id=100 * i)
            for i, (m, g, o, done) in enumerate(shapes))
        clone, rest = decode_frame(
            encode_frame_oob(ResultMsg(1, None, blocks)))
        assert rest == b""
        for original, decoded in zip(blocks, clone.results):
            assert_blocks_equal(original, decoded)

    @given(order=st.permutations(list(range(4))))
    @settings(max_examples=20, deadline=None)
    def test_frame_order_is_preserved(self, order):
        """Concatenated frames decode in stream order regardless of
        block content ordering."""
        frames = b"".join(
            encode_frame_oob(ResultMsg(i, None, (make_block(
                n_members=2 + i, seed=i),)))
            for i in order)
        decoded = list(decode_stream(frames))
        assert [m.worker_id for m in decoded] == list(order)
        assert [m.results[0].n_members for m in decoded] == \
            [2 + i for i in order]


class TestCoalescedSharedPages:
    def test_publish_map_roundtrip_and_release(self):
        prefix = make_prefix()
        blocks = [make_block(n_members=40, n_grid=8, seed=1),
                  make_block(n_members=16, n_grid=8, seed=2,
                             first_id=50)]
        try:
            shm_block = publish_results(blocks, prefix)
            assert shm_block.name is not None  # big enough for pages
            mapped = map_results(shm_block)
            assert len(mapped) == 2
            for original, view in zip(blocks, mapped):
                assert isinstance(view, ResultBlock)
                assert_blocks_equal(original, view)
            # unpacked members are views over the shared pages; the
            # block owns the segment and one release frees it
            for view in mapped:
                for member in view.unpack():
                    assert member._segment is None
                view.release()
            assert leaked_segments(prefix) == []
        finally:
            sweep_orphans(prefix)

    def test_empty_done_block_rides_inline(self):
        prefix = make_prefix()
        block = make_block(n_members=3, n_grid=0, done=True)
        try:
            shm_block = publish_results([block], prefix)
            assert shm_block.name is None  # nothing worth sharing
            mapped = map_results(shm_block)
            assert mapped[0].done and len(mapped[0]) == 0
        finally:
            sweep_orphans(prefix)
