"""Determinism across serialisation and process boundaries.

The cluster runtime's fault tolerance rests on one property: a task
carries its complete simulator state (RNG included), so re-running a
pickled copy -- in this process, in another process, or on a worker that
replaced a dead one -- reproduces the lost quanta bit for bit.  These
tests pin that property down so engine changes cannot silently break it.
"""

import pickle
import subprocess
import sys

import pytest

from repro.distributed.message import decode_frame, encode_frame
from repro.sim.task import QuantumResult, make_tasks


def run_to_end(task, max_quanta=1000):
    results = []
    for _ in range(max_quanta):
        outcome = task.run_quantum()
        results.extend(outcome if isinstance(outcome, list) else [outcome])
        if task.done:
            return results
    raise AssertionError("task never finished")


def flat_samples(results):
    return [s for r in results for s in r.samples]


# One quantum in a *real* child process: unpickle the task from stdin,
# advance it, pickle (updated task, result) back -- the worker loop in
# miniature, without importing any test module in the child.
_CHILD = """
import pickle, sys
task = pickle.loads(sys.stdin.buffer.read())
result = task.run_quantum()
sys.stdout.buffer.write(pickle.dumps((task, result)))
"""


class TestProcessBoundary:
    def test_quantum_in_child_process_matches_local(self, neurospora_small):
        """Ship a mid-run task to a subprocess, run one quantum there,
        and get exactly the samples the local run would have produced."""
        make = lambda: make_tasks(  # noqa: E731
            neurospora_small, 1, 8.0, 2.0, 0.5, seed=7)[0]
        local = make()
        local.run_quantum()  # warm up: mid-run state is the hard case
        local_result = local.run_quantum()

        remote = make()
        remote.run_quantum()
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD],
            input=pickle.dumps(remote),
            capture_output=True, timeout=120)
        assert proc.returncode == 0, proc.stderr.decode()
        remote, remote_result = pickle.loads(proc.stdout)

        assert remote_result.samples == local_result.samples
        assert remote_result.steps == local_result.steps
        assert remote.time == local.time
        # and the returned state continues identically
        assert local.run_quantum().samples == remote.run_quantum().samples

    def test_frame_codec_preserves_task_state(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, 6.0, 2.0, 0.5, seed=3)[0]
        task.run_quantum()
        clone, rest = decode_frame(encode_frame(task))
        assert rest == b""
        assert flat_samples(run_to_end(clone)) == flat_samples(run_to_end(task))

    def test_quantum_result_roundtrips(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, 4.0, 2.0, 0.5, seed=1)[0]
        result = task.run_quantum()
        clone, _ = decode_frame(encode_frame(result))
        assert isinstance(clone, QuantumResult)
        assert (clone.task_id, clone.samples, clone.time,
                clone.steps, clone.done) == (
            result.task_id, result.samples, result.time,
            result.steps, result.done)


class TestSeededReplay:
    @pytest.mark.parametrize("engine", ["flat", "batch"])
    def test_same_seed_same_trajectory(self, neurospora_small, engine):
        runs = []
        for _ in range(2):
            tasks = make_tasks(neurospora_small, 2, 6.0, 2.0, 0.5,
                               seed=11, engine=engine, batch_size=2)
            runs.append([flat_samples(run_to_end(t)) for t in tasks])
        assert runs[0] == runs[1]

    def test_snapshot_replay_is_bit_identical(self, neurospora_small):
        """The reassignment scenario: the master holds the last
        acknowledged (pickled) state; replaying from it must reproduce
        the quanta the dead worker never delivered."""
        task = make_tasks(neurospora_small, 1, 10.0, 2.0, 0.5, seed=5)[0]
        task.run_quantum()
        snapshot = pickle.dumps(task)  # last state the master acknowledged
        original_rest = flat_samples(run_to_end(task))
        replayed_rest = flat_samples(run_to_end(pickle.loads(snapshot)))
        assert replayed_rest == original_rest
