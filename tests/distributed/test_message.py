"""Frame codec: round-trips and corruption detection."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.message import (
    FrameCodec,
    FrameError,
    StreamDecoder,
    decode_frame,
    decode_stream,
    encode_frame,
)

payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.floats(allow_nan=False),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12)


class TestRoundTrip:
    def test_simple(self):
        frame = encode_frame({"x": [1, 2.5, "three"]})
        obj, rest = decode_frame(frame)
        assert obj == {"x": [1, 2.5, "three"]}
        assert rest == b""

    @given(payloads)
    @settings(max_examples=60)
    def test_any_picklable(self, obj):
        decoded, rest = decode_frame(encode_frame(obj))
        assert decoded == obj and rest == b""

    def test_simulation_task_roundtrips(self, neurospora_small):
        from repro.sim.task import make_tasks
        task = make_tasks(neurospora_small, 1, 5.0, 1.0, 1.0, seed=2)[0]
        task.run_quantum()
        clone, _ = decode_frame(encode_frame(task))
        assert clone.run_quantum().samples == task.run_quantum().samples

    def test_concatenated_frames(self):
        data = encode_frame(1) + encode_frame("two") + encode_frame([3])
        assert list(decode_stream(data)) == [1, "two", [3]]


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(FrameError, match="truncated header"):
            decode_frame(b"CW\x00")

    def test_truncated_payload(self):
        frame = encode_frame("hello world")
        with pytest.raises(FrameError, match="truncated payload"):
            decode_frame(frame[:-3])

    def test_bad_magic(self):
        frame = bytearray(encode_frame(1))
        frame[0] = ord("X")
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(frame))

    def test_flipped_payload_bit_detected(self):
        frame = bytearray(encode_frame("payload data here"))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(frame))

    def test_trailing_bytes_returned(self):
        frame = encode_frame(7) + b"extra"
        obj, rest = decode_frame(frame)
        assert obj == 7 and rest == b"extra"


class TestCodecAccounting:
    def test_counters(self):
        codec = FrameCodec("test")
        frame = codec.encode([1, 2, 3])
        codec.decode(frame)
        assert codec.messages_out == codec.messages_in == 1
        assert codec.bytes_out == codec.bytes_in == len(frame)
        assert codec.mean_message_size() == len(frame)

    def test_decode_rejects_trailing(self):
        codec = FrameCodec()
        with pytest.raises(FrameError, match="trailing"):
            codec.decode(encode_frame(1) + b"junk")

    def test_mean_size_empty(self):
        assert FrameCodec().mean_message_size() == 0.0


class TestStreamDecoder:
    """Partial-read buffering: the property sockets need (decode_frame
    raises on short reads; StreamDecoder waits for the rest)."""

    def test_whole_frame(self):
        decoder = StreamDecoder()
        assert decoder.feed(encode_frame({"a": 1})) == [{"a": 1}]
        assert decoder.pending_bytes == 0

    def test_truncated_header_buffers(self):
        decoder = StreamDecoder()
        frame = encode_frame("hello")
        assert decoder.feed(frame[:4]) == []          # mid-header
        assert decoder.pending_bytes == 4
        assert decoder.feed(frame[4:]) == ["hello"]
        assert decoder.pending_bytes == 0

    def test_truncated_payload_buffers(self):
        decoder = StreamDecoder()
        frame = encode_frame(list(range(50)))
        assert decoder.feed(frame[:-7]) == []         # mid-payload
        assert decoder.feed(frame[-7:]) == [list(range(50))]

    def test_byte_at_a_time(self):
        decoder = StreamDecoder()
        out = []
        for i, byte in enumerate(encode_frame(("x", 2.5))):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [("x", 2.5)]

    def test_multi_frame_coalesced_read(self):
        decoder = StreamDecoder()
        data = encode_frame(1) + encode_frame("two") + encode_frame([3])
        assert decoder.feed(data) == [1, "two", [3]]
        assert decoder.frames_decoded == 3

    def test_coalesced_plus_partial_tail(self):
        decoder = StreamDecoder()
        tail = encode_frame("tail")
        data = encode_frame("head") + tail[:5]
        assert decoder.feed(data) == ["head"]
        assert decoder.pending_bytes == 5
        assert decoder.feed(tail[5:]) == ["tail"]

    def test_corrupted_checksum_raises(self):
        decoder = StreamDecoder()
        frame = bytearray(encode_frame("payload data"))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            decoder.feed(bytes(frame))

    def test_bad_magic_raises(self):
        decoder = StreamDecoder()
        with pytest.raises(FrameError, match="magic"):
            decoder.feed(b"XXjunk that is not a frame header")

    def test_codec_accounting(self):
        codec = FrameCodec("rx")
        decoder = StreamDecoder(codec=codec)
        frame = encode_frame([1, 2, 3])
        decoder.feed(frame[:3])
        decoder.feed(frame[3:])
        assert codec.messages_in == 1
        assert codec.bytes_in == len(frame)

    @given(st.lists(payloads, max_size=5), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_any_chunking_reassembles(self, objs, chunk):
        data = b"".join(encode_frame(o) for o in objs)
        decoder = StreamDecoder()
        out = []
        for i in range(0, len(data), chunk):
            out.extend(decoder.feed(data[i:i + chunk]))
        assert out == objs
        assert decoder.pending_bytes == 0
