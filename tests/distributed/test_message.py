"""Frame codec: round-trips and corruption detection."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.message import (
    FrameCodec,
    FrameError,
    decode_frame,
    decode_stream,
    encode_frame,
)

payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.floats(allow_nan=False),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12)


class TestRoundTrip:
    def test_simple(self):
        frame = encode_frame({"x": [1, 2.5, "three"]})
        obj, rest = decode_frame(frame)
        assert obj == {"x": [1, 2.5, "three"]}
        assert rest == b""

    @given(payloads)
    @settings(max_examples=60)
    def test_any_picklable(self, obj):
        decoded, rest = decode_frame(encode_frame(obj))
        assert decoded == obj and rest == b""

    def test_simulation_task_roundtrips(self, neurospora_small):
        from repro.sim.task import make_tasks
        task = make_tasks(neurospora_small, 1, 5.0, 1.0, 1.0, seed=2)[0]
        task.run_quantum()
        clone, _ = decode_frame(encode_frame(task))
        assert clone.run_quantum().samples == task.run_quantum().samples

    def test_concatenated_frames(self):
        data = encode_frame(1) + encode_frame("two") + encode_frame([3])
        assert list(decode_stream(data)) == [1, "two", [3]]


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(FrameError, match="truncated header"):
            decode_frame(b"CW\x00")

    def test_truncated_payload(self):
        frame = encode_frame("hello world")
        with pytest.raises(FrameError, match="truncated payload"):
            decode_frame(frame[:-3])

    def test_bad_magic(self):
        frame = bytearray(encode_frame(1))
        frame[0] = ord("X")
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(frame))

    def test_flipped_payload_bit_detected(self):
        frame = bytearray(encode_frame("payload data here"))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(frame))

    def test_trailing_bytes_returned(self):
        frame = encode_frame(7) + b"extra"
        obj, rest = decode_frame(frame)
        assert obj == 7 and rest == b"extra"


class TestCodecAccounting:
    def test_counters(self):
        codec = FrameCodec("test")
        frame = codec.encode([1, 2, 3])
        codec.decode(frame)
        assert codec.messages_out == codec.messages_in == 1
        assert codec.bytes_out == codec.bytes_in == len(frame)
        assert codec.mean_message_size() == len(frame)

    def test_decode_rejects_trailing(self):
        codec = FrameCodec()
        with pytest.raises(FrameError, match="trailing"):
            codec.decode(encode_frame(1) + b"junk")

    def test_mean_size_empty(self):
        assert FrameCodec().mean_message_size() == 0.0
