"""The TCP master/worker cluster runtime (repro.distributed.net)."""

import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.distributed.net import (
    ClusterError,
    ClusterMaster,
    Hello,
    KillWorkerAfter,
    run_workflow_cluster,
)
from repro.distributed.worker import worker_main
from repro.pipeline import SteeringController, WorkflowConfig, run_workflow
from repro.sim.task import make_tasks


def config(**overrides):
    base = dict(n_simulations=6, t_end=6.0, sample_every=0.5, quantum=2.0,
                n_sim_workers=2, window_size=5, seed=0, keep_cuts=True)
    base.update(overrides)
    return WorkflowConfig(**base)


def stats_of(result):
    return [(s.grid_index, s.mean, s.variance)
            for s in result.cut_statistics()]


class TestClusterWorkflow:
    def test_results_identical_to_threads(self, neurospora_small):
        """The whole point: sockets, processes and scheduling change
        nothing -- same seeds, bit-identical statistics."""
        threaded = run_workflow(neurospora_small, config())
        clustered = run_workflow(neurospora_small,
                                 config(backend="cluster"))
        assert stats_of(threaded) == stats_of(clustered)

    def test_workers_flag_controls_pool(self, neurospora_small):
        chaos = _Recorder()
        run_workflow_cluster(neurospora_small,
                             config(backend="cluster", cluster_workers=3),
                             fault_hook=chaos)
        assert len(chaos.master.workers) == 3

    def test_trajectories_reassemble(self, neurospora_small):
        threaded = run_workflow(neurospora_small, config())
        clustered = run_workflow(neurospora_small, config(backend="cluster"))
        reference = threaded.trajectories()
        trajectories = clustered.trajectories()
        assert len(trajectories) == len(reference) == 6
        for ref, got in zip(reference, trajectories):
            assert got.times == ref.times
            assert got.samples == ref.samples

    def test_trace_counters_cover_links_and_workers(self, neurospora_small):
        result = run_workflow(neurospora_small,
                              config(backend="cluster", trace=True))
        counters = result.trace_report.counters
        assert counters["net.tasks_dispatched"] >= 6
        assert counters["net.results_received"] >= 6
        assert counters["net.bytes_out"] > 0
        assert counters["net.bytes_in"] > 0
        assert counters["net.link.w0.messages_out"] > 0
        assert (counters.get("net.worker.0.items", 0)
                + counters.get("net.worker.1.items", 0)
                == counters["net.results_received"])

    def test_steering_stops_early(self, neurospora_small):
        controller = SteeringController()
        controller._on_progress = controller.stop_after(1)
        cfg = config(backend="cluster", n_simulations=4, t_end=50.0,
                     window_size=4)
        result = run_workflow(neurospora_small, cfg, controller=controller)
        # drained early: far fewer cuts than a full 50h run would produce
        assert result.n_windows < 101 // 4


class TestFaultTolerance:
    def test_killed_worker_replays_identically(self, neurospora_small):
        """Acceptance: SIGKILL one of two workers mid-run; its in-flight
        tasks replay on the survivor from their last acknowledged state,
        and every statistic matches the single-process run bit-for-bit."""
        cfg = config(quantum=1.0)
        baseline = run_workflow(neurospora_small, cfg)
        chaos = KillWorkerAfter(n_results=3, worker_id=0)
        clustered = run_workflow_cluster(
            neurospora_small, config(backend="cluster", quantum=1.0),
            fault_hook=chaos)
        assert chaos.fired
        assert chaos.master.workers_failed == 1
        assert chaos.master.reassignments >= 1
        assert stats_of(baseline) == stats_of(clustered)

    def test_all_workers_dead_raises(self, neurospora_small):
        tasks = make_tasks(neurospora_small, 2, 6.0, 2.0, 0.5, seed=0)

        def kill_everything(master):
            for worker_id in list(master.workers):
                master.kill_worker(worker_id)

        master = ClusterMaster(tasks, n_workers=2,
                               fault_hook=kill_everything)
        with pytest.raises(ClusterError, match="all workers dead"):
            list(master.run())

    def test_heartbeat_timeout_detects_silent_worker(self, neurospora_small):
        """A worker that connects, registers and then goes mute (no
        heartbeats, no results) is declared dead; its tasks complete on
        the live worker."""
        tasks = make_tasks(neurospora_small, 4, 4.0, 2.0, 0.5, seed=0)
        master = ClusterMaster(tasks, n_workers=2, spawn_local=False,
                               heartbeat_interval=0.05,
                               heartbeat_timeout=0.5,
                               accept_timeout=10.0)
        results = []

        def drive():
            results.extend(master.run())

        driver = threading.Thread(target=drive)
        driver.start()
        for _ in range(100):  # wait for the master to bind its port
            if master.port:
                break
            time.sleep(0.05)
        # worker 0: a real in-thread worker; worker 1: mute after Hello
        live = threading.Thread(
            target=worker_main, args=("127.0.0.1", master.port, 0),
            kwargs={"heartbeat_interval": 0.05}, daemon=True)
        live.start()
        mute = socket.create_connection(("127.0.0.1", master.port))
        from repro.distributed.message import encode_frame
        mute.sendall(encode_frame(Hello(worker_id=1, pid=0)))

        driver.join(timeout=60.0)
        mute.close()
        assert not driver.is_alive()
        assert master.workers_failed == 1
        assert not master.workers[1].alive
        assert master.completed == 4
        # the results stream is complete despite the dead worker
        done = [r for r in results if r.done]
        assert len(done) == 4


class TestSchedulingPolicies:
    def test_host_affinity_pins_tasks(self, neurospora_small):
        """Without failures, a task never changes worker after its first
        dispatch (its warm state lives there in a real deployment)."""
        recorder = _Recorder(track_affinity=True)
        run_workflow_cluster(neurospora_small,
                             config(backend="cluster", quantum=1.0),
                             fault_hook=recorder)
        assert recorder.master.reassignments == 0
        assert recorder.pin_changes == 0
        assert len(recorder.first_pin) == 6  # every task got pinned once

    def test_inflight_window_bounds_outstanding_tasks(self, neurospora_small):
        recorder = _Recorder()
        run_workflow_cluster(
            neurospora_small,
            config(backend="cluster", quantum=1.0, cluster_inflight=1),
            fault_hook=recorder)
        assert recorder.max_in_flight <= 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="worker"):
            ClusterMaster([], n_workers=0)
        with pytest.raises(ValueError, match="inflight"):
            ClusterMaster([], n_workers=1, inflight_window=0)
        with pytest.raises(ValueError, match="backend"):
            config(backend="carrier-pigeon")
        with pytest.raises(ValueError, match="cluster_workers"):
            config(cluster_workers=0)


class TestRemoteJoinCLI:
    def test_worker_joins_via_cli(self, neurospora_small, tmp_path):
        """The documented remote-host path: spawn nothing locally, let a
        ``python -m repro.distributed.worker`` subprocess join over TCP."""
        import os

        tasks = make_tasks(neurospora_small, 2, 4.0, 2.0, 0.5, seed=0)
        master = ClusterMaster(tasks, n_workers=1, spawn_local=False,
                               accept_timeout=60.0)
        results = []
        failure = []

        def drive():
            try:
                results.extend(master.run())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failure.append(exc)

        driver = threading.Thread(target=drive)
        driver.start()
        for _ in range(200):
            if master.port:
                break
            time.sleep(0.05)
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.distributed.worker",
             "--connect", f"127.0.0.1:{master.port}", "--id", "0"],
            capture_output=True, text=True, timeout=120, env=env)
        driver.join(timeout=10.0)
        assert not failure, failure
        assert proc.returncode == 0, proc.stderr
        assert "quanta executed" in proc.stdout
        assert master.completed == 2
        assert len([r for r in results if r.done]) == 2


class _Recorder:
    """Fault-hook that only observes: per-result scheduler invariants."""

    def __init__(self, track_affinity=False):
        self.master = None
        self.max_in_flight = 0
        self.first_pin = {}
        self.pin_changes = 0
        self.track_affinity = track_affinity

    def __call__(self, master):
        self.master = master
        self.max_in_flight = max(
            [self.max_in_flight]
            + [len(h.in_flight) for h in master.workers.values()])
        if self.track_affinity:
            for key, worker_id in master.assignment.items():
                previous = self.first_pin.setdefault(key, worker_id)
                if previous != worker_id:
                    self.pin_changes += 1
