"""Process-backed simulation farm (real multiprocessing)."""

import pytest

from repro.distributed.procfarm import run_workflow_multiprocess
from repro.pipeline import WorkflowConfig, run_workflow


def config(**overrides):
    base = dict(n_simulations=4, t_end=5.0, sample_every=0.5, quantum=2.5,
                n_sim_workers=2, window_size=5, seed=0, keep_cuts=True)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestProcessFarm:
    def test_results_identical_to_thread_farm(self, neurospora_small):
        """Crossing process boundaries must not change results: same
        seeds, same trajectories, same statistics."""
        threaded = run_workflow(neurospora_small, config())
        processed = run_workflow_multiprocess(neurospora_small, config())
        assert [(s.grid_index, s.mean) for s in threaded.cut_statistics()] \
            == [(s.grid_index, s.mean) for s in processed.cut_statistics()]

    def test_trajectories_reassemble(self, neurospora_small):
        result = run_workflow_multiprocess(neurospora_small, config())
        trajectories = result.trajectories()
        assert len(trajectories) == 4
        assert all(len(t) == 11 for t in trajectories)

    def test_cwc_model_crosses_processes(self, neurospora_cwc_small):
        cfg = config(n_simulations=2, t_end=2.0, engine="cwc")
        result = run_workflow_multiprocess(neurospora_cwc_small, cfg)
        assert result.n_windows >= 1


class TestBackendDispatch:
    def test_reachable_as_processes_backend(self, neurospora_small):
        """``backend="processes"`` in run_workflow is the same runtime."""
        threaded = run_workflow(neurospora_small, config())
        processed = run_workflow(neurospora_small,
                                 config(backend="processes"))
        assert [(s.grid_index, s.mean) for s in threaded.cut_statistics()] \
            == [(s.grid_index, s.mean) for s in processed.cut_statistics()]

    def test_trace_covers_process_backend(self, neurospora_small):
        """``--trace`` works through the process farm: the domain
        counters (sim.* plus the offload counter) land in the report."""
        result = run_workflow(neurospora_small,
                              config(backend="processes", trace=True))
        counters = result.trace_report.counters
        assert counters["sim.trajectories_retired"] == 4
        assert counters["sim.quanta"] >= 4
        assert counters["sim.steps"] > 0
        assert counters["proc.quanta_offloaded"] == counters["sim.quanta"]
