"""Fleet reuse and idempotent teardown (ISSUE 8 satellite 2).

The service keeps one worker fleet alive across many tenant runs, so
the lifecycle pieces under it must be reentrant: a ClusterMaster's
``start()`` / ``run_tasks()`` / ``close()`` split has to survive
repeated runs and repeated closes, serve mode must multiplex namespaces
without key collisions, and ``run_workflow_multiprocess`` must accept a
caller-owned pool and leave it running.
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.distributed.net import ClusterError, ClusterMaster, NamespacedTask
from repro.distributed.procfarm import run_workflow_multiprocess
from repro.pipeline import WorkflowConfig, run_workflow
from repro.sim.task import make_tasks

pytestmark = pytest.mark.slow


def small_tasks(model, n=3, seed=0):
    return make_tasks(model, n_simulations=n, t_end=4.0, quantum=2.0,
                      sample_every=0.5, seed=seed)


def reference_samples(tasks):
    """What the tasks produce when run locally, in (task, samples) form
    -- the oracle for any distributed execution of copies."""
    per_task = {}
    for task in copy.deepcopy(tasks):
        samples = []
        while not task.done:
            result = task.run_quantum()
            for r in (result if isinstance(result, list) else [result]):
                samples.extend(r.samples)
        per_task[task.task_id] = samples
    return per_task


def collect(results_iter):
    per_task = {}
    for result in results_iter:
        per_task.setdefault(result.task_id, []).extend(result.samples)
    return per_task


class TestClusterReattach:
    def test_two_runs_reuse_one_fleet(self, neurospora_small):
        """run_tasks twice on one started master: both runs complete and
        both match the local oracle -- warm workers don't bleed state
        between runs."""
        batch1 = small_tasks(neurospora_small, seed=0)
        batch2 = small_tasks(neurospora_small, seed=100)
        master = ClusterMaster([], n_workers=2)
        master.start()
        try:
            got1 = collect(master.run_tasks(batch1))
            got2 = collect(master.run_tasks(batch2))
        finally:
            master.close()
        assert got1 == reference_samples(small_tasks(neurospora_small,
                                                     seed=0))
        assert got2 == reference_samples(small_tasks(neurospora_small,
                                                     seed=100))

    def test_close_is_idempotent(self, neurospora_small):
        master = ClusterMaster(small_tasks(neurospora_small),
                               n_workers=1)
        master.start()
        master.close()
        master.close()  # double-close must be a no-op
        master._shutdown()  # and the legacy alias too

    def test_close_without_start_is_safe(self):
        master = ClusterMaster([], n_workers=1)
        master.close()
        master.close()

    def test_closed_master_rejects_reuse(self, neurospora_small):
        master = ClusterMaster([], n_workers=1)
        master.start()
        master.close()
        with pytest.raises(ClusterError):
            master.start()
        with pytest.raises(ClusterError):
            list(master.run_tasks(small_tasks(neurospora_small)))

    def test_run_tasks_requires_start(self, neurospora_small):
        master = ClusterMaster([], n_workers=1)
        with pytest.raises(ClusterError):
            list(master.run_tasks(small_tasks(neurospora_small)))

    def test_one_shot_run_still_closes(self, neurospora_small):
        """The historical run() contract: drive to completion, tear
        down, and stay torn down."""
        tasks = small_tasks(neurospora_small)
        master = ClusterMaster(tasks, n_workers=2)
        got = collect(master.run())
        assert got == reference_samples(small_tasks(neurospora_small))
        with pytest.raises(ClusterError):
            master.start()


class TestServeMode:
    def test_execute_resolves_like_a_pool(self, neurospora_small):
        task = small_tasks(neurospora_small, n=1)[0]
        oracle = reference_samples([task])[task.task_id]
        master = ClusterMaster([], n_workers=1)
        master.serve()
        try:
            samples = []
            current = task
            while not current.done:
                current, results = master.execute(current).result(
                    timeout=60)
                for r in results:
                    samples.extend(r.samples)
            assert samples == oracle
        finally:
            master.close()

    def test_namespaces_keep_equal_task_ids_apart(self, neurospora_small):
        """Two tenants both submit task_id 0: host affinity and result
        routing must not cross."""
        t_a = small_tasks(neurospora_small, n=1, seed=0)[0]
        t_b = small_tasks(neurospora_small, n=1, seed=100)[0]
        assert t_a.task_id == t_b.task_id
        oracle_a = reference_samples([t_a])[t_a.task_id]
        oracle_b = reference_samples([t_b])[t_b.task_id]
        master = ClusterMaster([], n_workers=2)
        master.serve()
        try:
            samples = {"a": [], "b": []}
            current = {"a": t_a, "b": t_b}
            while any(not t.done for t in current.values()):
                futures = {ns: master.execute(t, namespace=ns)
                           for ns, t in current.items() if not t.done}
                for ns, future in futures.items():
                    advanced, results = future.result(timeout=60)
                    current[ns] = advanced
                    for r in results:
                        samples[ns].extend(r.samples)
        finally:
            master.close()
        assert samples["a"] == oracle_a
        assert samples["b"] == oracle_b
        assert samples["a"] != samples["b"]

    def test_run_tasks_refused_while_serving(self, neurospora_small):
        master = ClusterMaster([], n_workers=1)
        master.serve()
        try:
            with pytest.raises(ClusterError):
                list(master.run_tasks(small_tasks(neurospora_small)))
        finally:
            master.close()

    def test_execute_after_close_raises(self, neurospora_small):
        master = ClusterMaster([], n_workers=1)
        master.serve()
        master.close()
        with pytest.raises(ClusterError):
            master.execute(small_tasks(neurospora_small, n=1)[0])

    def test_close_fails_orphaned_futures(self, neurospora_small):
        """Futures still pending when the master closes must fail, not
        hang their waiters forever."""
        master = ClusterMaster([], n_workers=1)
        master.serve()
        futures = [master.execute(t)
                   for t in small_tasks(neurospora_small, n=4)]
        master.close()
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.append("ok")
            except ClusterError:
                outcomes.append("failed")
        assert "failed" in outcomes or all(o == "ok" for o in outcomes)
        assert len(outcomes) == 4  # nobody hung


class TestNamespacedTaskEnvelope:
    def test_envelope_delegates_and_pickles(self, neurospora_small):
        task = small_tasks(neurospora_small, n=1)[0]
        wrapped = NamespacedTask("tenant-1", task)
        assert wrapped.done == task.done
        assert wrapped.time == task.time
        import pickle
        back = pickle.loads(pickle.dumps(wrapped))
        assert back.namespace == "tenant-1"
        assert back.task.task_id == task.task_id


class TestProcessFarmPoolReuse:
    def test_caller_owned_pool_survives_runs(self, neurospora_small):
        """Two workflows over one pool: results identical to the
        owned-pool path, and the pool still works afterwards."""
        cfg = WorkflowConfig(n_simulations=4, t_end=4.0, sample_every=0.5,
                             quantum=2.0, n_sim_workers=2, window_size=5,
                             seed=3, keep_cuts=True)
        baseline = run_workflow(neurospora_small, cfg)
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = run_workflow_multiprocess(neurospora_small, cfg,
                                              pool=pool)
            second = run_workflow_multiprocess(neurospora_small, cfg,
                                              pool=pool)
            # the farm did not shut the caller's pool down
            assert pool.submit(pow, 2, 5).result(timeout=30) == 32
        expect = [(s.grid_index, s.mean, s.variance)
                  for s in baseline.cut_statistics()]
        assert [(s.grid_index, s.mean, s.variance)
                for s in first.cut_statistics()] == expect
        assert [(s.grid_index, s.mean, s.variance)
                for s in second.cut_statistics()] == expect
