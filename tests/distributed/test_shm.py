"""Shared-memory result ring: segment lifecycle, leak handling, and
equivalence of the zero-copy processes backend.

The lifecycle invariants under test: a segment created by a worker is
unlinked exactly when its last consumer releases; results the engine
drops and results the aligner ingests both count as consumers; a worker
dying mid-publish leaves an orphan that leak detection sees and the
run-end sweep reclaims; and none of this changes a single sample value.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.distributed.procfarm import run_workflow_multiprocess
from repro.distributed.shm import (
    SEGMENT_PREFIX,
    SHM_MIN_BYTES,
    ShmEntry,
    leaked_segments,
    make_prefix,
    map_results,
    publish_results,
    sweep_orphans,
)
from repro.pipeline import WorkflowConfig, run_workflow
from repro.sim.task import QuantumResult


def columnar_result(task_id=0, n=128, n_obs=4, grid_start=0, done=False):
    times = np.arange(n, dtype=float) * 0.5
    values = (np.arange(n * n_obs, dtype=float).reshape(n, n_obs)
              + 1000 * task_id)
    return QuantumResult(task_id, None, time=float(n) * 0.5, steps=17,
                         done=done, grid_start=grid_start,
                         times=times, values=values)


@pytest.fixture
def prefix():
    p = make_prefix()
    yield p
    sweep_orphans(p)  # never leak past a failing test


class TestPublishMap:
    def test_roundtrip_preserves_samples(self, prefix):
        originals = [columnar_result(task_id=i) for i in range(3)]
        block = publish_results(originals, prefix)
        assert block.name is not None
        assert block.payload_nbytes >= sum(r._values.nbytes for r in originals)
        mapped = map_results(block)
        assert len(mapped) == 3
        for orig, clone in zip(originals, mapped):
            assert clone.task_id == orig.task_id
            assert clone.grid_start == orig.grid_start
            assert clone.steps == orig.steps
            assert np.array_equal(clone._times, orig._times)
            assert np.array_equal(clone._values, orig._values)
        for clone in mapped:
            clone.release()

    def test_small_payload_stays_inline(self, prefix):
        small = [columnar_result(n=4, n_obs=2)]
        assert small[0]._values.nbytes < SHM_MIN_BYTES
        block = publish_results(small, prefix)
        assert block.name is None
        assert block.entries[0] is small[0]
        assert leaked_segments(prefix) == []

    def test_row_form_and_empty_results_ride_inline(self, prefix):
        rows = QuantumResult(1, [(0, 0.0, (1.0,))], time=1.0, steps=2)
        empty = QuantumResult(2, [], time=1.0, steps=0, done=True)
        big = columnar_result(task_id=0, n=256, n_obs=4)
        block = publish_results([rows, big, empty], prefix)
        assert block.name is not None
        assert block.entries[0] is rows
        assert isinstance(block.entries[1], ShmEntry)
        assert block.entries[2] is empty
        mapped = map_results(block)
        assert mapped[0] is rows and mapped[2] is empty
        assert np.array_equal(mapped[1]._values, big._values)
        mapped[1].release()


class TestSegmentLifecycle:
    def test_unlinked_after_last_release(self, prefix):
        block = publish_results(
            [columnar_result(task_id=i) for i in range(2)], prefix)
        mapped = map_results(block)
        segment = mapped[0]._segment
        assert segment is mapped[1]._segment  # one segment per quantum
        assert segment.refs == 2
        assert leaked_segments(prefix) == [block.name]
        mapped[0].release()
        assert leaked_segments(prefix) == [block.name]  # one consumer left
        mapped[1].release()
        assert leaked_segments(prefix) == []

    def test_release_severs_arrays(self, prefix):
        """After release the pages may be unmapped: the result must fail
        a stale read loudly instead of touching dead memory."""
        block = publish_results([columnar_result()], prefix)
        result = map_results(block)[0]
        ingested = result._values.copy()
        result.release()
        assert result._values is None and result._times is None
        assert len(result) == 0
        assert ingested.shape == (128, 4)

    def test_double_release_is_single_decrement(self, prefix):
        block = publish_results(
            [columnar_result(task_id=i) for i in range(2)], prefix)
        mapped = map_results(block)
        mapped[0].release()
        mapped[0].release()  # idempotent: must not steal 1's reference
        assert leaked_segments(prefix) == [block.name]
        mapped[1].release()
        assert leaked_segments(prefix) == []

    def test_sweep_reclaims_unmapped_segment(self, prefix):
        block = publish_results([columnar_result()], prefix)
        assert leaked_segments(prefix) == [block.name]
        assert sweep_orphans(prefix) == [block.name]
        assert leaked_segments(prefix) == []

    def test_sweep_ignores_other_runs(self, prefix):
        other = make_prefix()
        block = publish_results([columnar_result()], other)
        try:
            assert sweep_orphans(prefix) == []
            assert leaked_segments(other) == [block.name]
        finally:
            sweep_orphans(other)


def _publish_then_die(prefix):
    """Pool-worker chaos: create the segment, then die before the
    descriptor ever reaches the master."""
    publish_results([columnar_result()], prefix)
    os._exit(1)


class TestWorkerDeath:
    def test_worker_dying_mid_publish_leaves_sweepable_orphan(self, prefix):
        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.submit(_publish_then_die, prefix).result()
        leaked = leaked_segments(prefix)
        assert len(leaked) == 1  # nobody will ever release it...
        assert sweep_orphans(prefix) == leaked  # ...except the sweep
        assert leaked_segments(prefix) == []


def _shm_config(**overrides):
    base = dict(n_simulations=32, t_end=5.0, sample_every=0.25,
                quantum=2.5, n_sim_workers=2, window_size=5, seed=0,
                engine="batch", batch_size=32, keep_cuts=True)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestProcessesBackendZeroCopy:
    def test_bit_identical_to_plain_pickling(self, neurospora_small):
        plain = run_workflow_multiprocess(
            neurospora_small, _shm_config(zero_copy=False))
        shared = run_workflow_multiprocess(
            neurospora_small, _shm_config(zero_copy=True))
        for a, b in zip(plain.cuts, shared.cuts):
            assert a == b
        assert [(s.grid_index, s.mean) for s in plain.cut_statistics()] \
            == [(s.grid_index, s.mean) for s in shared.cut_statistics()]

    def test_shm_path_actually_engaged(self, neurospora_small):
        result = run_workflow(neurospora_small,
                              _shm_config(backend="processes", trace=True))
        counters = result.trace_report.counters
        assert counters.get("proc.shm_blocks", 0) >= 1
        assert counters.get("proc.shm_bytes", 0) > 0

    def test_run_leaves_no_segments_behind(self, neurospora_small):
        run_workflow_multiprocess(neurospora_small, _shm_config())
        mine = f"{SEGMENT_PREFIX}-{os.getpid()}"
        assert leaked_segments(mine) == []


class TestDeadOwnerSweep:
    """Startup hygiene (ISSUE 8 satellite 1): a service restarting after
    a crash reclaims segments whose owning master process is gone --
    and only those."""

    def test_dead_owner_segment_is_swept(self):
        from repro.distributed.shm import sweep_dead_owners

        # a pid that certainly is not running: fork a child that exits
        # immediately, then use its (now free) pid as the "crashed
        # service"
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead_prefix = make_prefix(master_pid=pid, tag="crashed")
        block = publish_results([columnar_result()], dead_prefix)
        try:
            swept = sweep_dead_owners()
            assert block.name in swept
            assert leaked_segments(dead_prefix) == []
        finally:
            sweep_orphans(dead_prefix)

    def test_live_owner_segments_are_untouched(self, prefix):
        from repro.distributed.shm import sweep_dead_owners

        block = publish_results([columnar_result()], prefix)
        try:
            swept = sweep_dead_owners()
            assert block.name not in swept
            assert leaked_segments(prefix) == [block.name]
        finally:
            sweep_orphans(prefix)

    def test_tagged_prefix_embeds_owner_and_tag(self):
        p = make_prefix(tag="run-7")
        assert p.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-run-7-")

    def test_fleet_start_runs_the_sweep(self):
        """The shared fleet's startup is the service's hygiene hook."""
        from repro.distributed.shm import sweep_dead_owners
        from repro.service.fleet import SharedFleet

        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead_prefix = make_prefix(master_pid=pid, tag="crashed")
        block = publish_results([columnar_result()], dead_prefix)
        fleet = SharedFleet(1, backend="threads")
        try:
            fleet.start()
            assert block.name in fleet.stats()["swept_at_start"]
            assert leaked_segments(dead_prefix) == []
        finally:
            fleet.close()
            sweep_orphans(dead_prefix)
