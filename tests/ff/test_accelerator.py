"""Accelerator (offloading) mode."""

import time

import pytest

from repro.ff import Accelerator, Farm, FunctionNode, Pipeline
from repro.ff.errors import FFError, GraphError, NodeError


class TestAccelerator:
    def test_offload_collect_ordered(self):
        with Accelerator(Farm.replicate(lambda x: x * 2, 3,
                                        ordered=True)) as acc:
            for i in range(20):
                acc.offload(i)
            results = acc.collect()
        assert results == [i * 2 for i in range(20)]

    def test_single_node(self):
        with Accelerator(FunctionNode(lambda x: x + 1)) as acc:
            acc.offload(41)
            assert acc.collect() == [42]

    def test_pipeline_structure(self):
        pipe = Pipeline([lambda x: x + 1, lambda x: x * 10])
        with Accelerator(pipe) as acc:
            for i in range(5):
                acc.offload(i)
            results = acc.collect()
        assert results == [(i + 1) * 10 for i in range(5)]

    def test_try_load_streams_results(self):
        with Accelerator(FunctionNode(lambda x: x)) as acc:
            acc.offload("ping")
            deadline = time.time() + 2.0
            got, item = False, None
            while not got and time.time() < deadline:
                got, item = acc.try_load()
            assert got and item == "ping"
            acc.offload("pong")
            assert acc.collect() == ["pong"]

    def test_empty_stream(self):
        with Accelerator(FunctionNode(lambda x: x)) as acc:
            assert acc.collect() == []

    def test_offload_after_collect_rejected(self):
        acc = Accelerator(FunctionNode(lambda x: x)).start()
        acc.collect()
        with pytest.raises(FFError):
            acc.offload(1)

    def test_offload_before_start_rejected(self):
        acc = Accelerator(FunctionNode(lambda x: x))
        with pytest.raises(FFError):
            acc.offload(1)

    def test_double_start_rejected(self):
        acc = Accelerator(FunctionNode(lambda x: x)).start()
        with pytest.raises(FFError):
            acc.start()
        acc.collect()

    def test_source_structure_rejected(self):
        with pytest.raises(GraphError):
            Accelerator(Pipeline([range(3), lambda x: x]))

    def test_node_error_propagates(self):
        def boom(x):
            raise ValueError("bad item")

        acc = Accelerator(FunctionNode(boom)).start()
        acc.offload(1)
        with pytest.raises(NodeError):
            acc.collect()

    def test_reusable_farm_results_unordered(self):
        with Accelerator(Farm.replicate(lambda x: -x, 4)) as acc:
            for i in range(30):
                acc.offload(i)
            results = acc.collect()
        assert sorted(results) == [-i for i in range(29, -1, -1)]
