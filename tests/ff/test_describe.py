"""Topology description."""

from repro.ff import Farm, FunctionNode, Pipeline
from repro.ff.describe import describe
from repro.models import neurospora_network
from repro.pipeline import WorkflowConfig
from repro.pipeline.builder import build_workflow


class TestDescribe:
    def test_pipeline_and_farm(self):
        farm = Farm.replicate(lambda x: x, 3, ordered=True, name="f")
        text = describe(Pipeline([range(3), farm], name="p"))
        assert "pipeline 'p':" in text
        assert "farm 'f' [width=3, ordered, ondemand]:" in text
        assert text.count("worker[") == 3

    def test_feedback_marked(self):
        from repro.ff import MasterWorkerEmitter

        class E(MasterWorkerEmitter):
            def is_complete(self, task):
                return True

        farm = Farm([FunctionNode(lambda x: x)], emitter=E(),
                    feedback=True, name="mw")
        text = describe(farm)
        assert "feedback: workers -> emitter" in text
        assert "emitter: E" in text

    def test_full_workflow_description_mirrors_fig2(self):
        workflow = build_workflow(
            neurospora_network(omega=10),
            WorkflowConfig(n_simulations=2, t_end=2.0, sample_every=1.0,
                           quantum=1.0, n_sim_workers=2))
        text = describe(workflow)
        # every Fig. 2 box is present
        assert "task-gen" in text
        assert "sim-farm" in text
        assert "sim-eng-0" in text
        assert "collector: align" in text
        assert "windows" in text
        assert "stat-farm" in text
        assert "collector: gather" in text
        assert "feedback: workers -> emitter" in text

    def test_pipeline_workers_rendered(self):
        farm = Farm([Pipeline([lambda x: x], name="inner")], name="outer")
        text = describe(farm)
        assert "worker[0]:" in text
        assert "pipeline 'inner':" in text
