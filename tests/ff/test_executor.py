"""Executor equivalence and robustness (including property-based checks:
both backends must compute the same stream for any composition)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ff import Farm, Pipeline, run
from repro.ff.errors import GraphError


def _square(x):
    return x * x


def _plus_one(x):
    return x + 1


def _negate(x):
    return -x


_STAGE_FUNCS = [_square, _plus_one, _negate]


@st.composite
def compositions(draw):
    """A random pipeline: source + a few stages, some farms (possibly
    ordered), some plain functions."""
    items = draw(st.lists(st.integers(-50, 50), max_size=30))
    n_stages = draw(st.integers(1, 4))
    stages = [items]
    for _ in range(n_stages):
        fn = _STAGE_FUNCS[draw(st.integers(0, len(_STAGE_FUNCS) - 1))]
        kind = draw(st.sampled_from(["plain", "farm", "ordered-farm"]))
        if kind == "plain":
            stages.append(fn)
        else:
            width = draw(st.integers(1, 4))
            stages.append(Farm.replicate(fn, width,
                                         ordered=(kind == "ordered-farm")))
    return stages


def _rebuild(stages):
    """Pattern objects hold node instances, so each run needs a fresh
    composition; rebuild from the recipe."""
    out = [stages[0]]
    for stage in stages[1:]:
        if isinstance(stage, Farm):
            out.append(Farm.replicate(
                stage.workers[0].fn if hasattr(stage.workers[0], "fn")
                else stage.workers[0], stage.width, ordered=stage.ordered))
        else:
            out.append(stage)
    return out


class TestBackendEquivalence:
    @given(compositions())
    @settings(max_examples=25, deadline=None)
    def test_same_multiset_of_results(self, stages):
        seq = run(Pipeline(_rebuild(stages)), backend="sequential")
        thr = run(Pipeline(_rebuild(stages)), backend="threads")
        assert sorted(seq) == sorted(thr)

    @given(st.lists(st.integers(-100, 100), max_size=40),
           st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_ordered_farm_is_identity_ordering(self, items, width):
        farm = Farm.replicate(_plus_one, width, ordered=True)
        out = run(Pipeline([items, farm]), backend="threads")
        assert out == [x + 1 for x in items]


class TestExecutorValidation:
    def test_unknown_backend(self):
        with pytest.raises(GraphError):
            run(Pipeline([range(3)]), backend="quantum")

    def test_sequential_is_deterministic(self):
        def build():
            return Pipeline([range(20), Farm.replicate(_square, 3)])

        first = run(build(), backend="sequential")
        second = run(build(), backend="sequential")
        assert first == second

    def test_threads_capacity_one_still_works(self):
        out = run(Pipeline([range(10), _plus_one, _square]),
                  backend="threads", capacity=1)
        assert out == [(x + 1) ** 2 for x in range(10)]

    def test_large_stream_bounded_queues(self):
        out = run(Pipeline([range(5000), _plus_one]), backend="threads",
                  capacity=8)
        assert len(out) == 5000
        assert out == [x + 1 for x in range(5000)]
