"""Multi-worker failure aggregation and executor error equivalence.

Regression for error swallowing: the threaded executor and the
accelerator used to raise only ``errors[0]`` and silently drop every
other node failure, making multi-worker crashes undiagnosable.
"""

import pytest

from repro.ff import (
    Accelerator,
    Farm,
    MultiNodeError,
    Node,
    NodeError,
    Pipeline,
    run,
)
from repro.ff.errors import aggregate_node_errors


class _Bomb(Node):
    def svc(self, item):
        raise RuntimeError(f"{self.name} exploded on {item!r}")


def _two_bomb_farm():
    # round-robin guarantees both workers receive items and both raise
    return Farm([_Bomb(name="b0"), _Bomb(name="b1")],
                scheduling="roundrobin")


class TestAggregation:
    def test_helper_contract(self):
        assert aggregate_node_errors([]) is None
        single = NodeError("n", ValueError("x"))
        assert aggregate_node_errors([single]) is single
        multi = aggregate_node_errors([single,
                                       NodeError("m", KeyError("y"))])
        assert isinstance(multi, MultiNodeError)
        assert [e.node_name for e in multi.errors] == ["n", "m"]

    def test_multi_is_a_node_error(self):
        """Existing ``except NodeError`` handlers keep working."""
        err = MultiNodeError([NodeError("a", ValueError("v")),
                              NodeError("b", KeyError("k"))])
        assert isinstance(err, NodeError)
        assert err.node_name == "a"
        assert isinstance(err.original, ValueError)
        assert "2 nodes failed" in str(err)

    def test_empty_multi_rejected(self):
        with pytest.raises(ValueError):
            MultiNodeError([])


class TestThreadedFarmFailures:
    def test_all_worker_errors_surface(self):
        with pytest.raises(NodeError) as info:
            run(Pipeline([range(20), _two_bomb_farm()]),
                backend="threads", capacity=2)
        err = info.value
        assert isinstance(err, MultiNodeError)
        assert {e.node_name for e in err.errors} == {"b0", "b1"}
        for sub in err.errors:
            assert isinstance(sub.original, RuntimeError)

    def test_single_failure_stays_plain_node_error(self):
        farm = Farm([_Bomb(name="b0"), lambda x: x],
                    scheduling="roundrobin")
        with pytest.raises(NodeError) as info:
            run(Pipeline([range(20), farm]), backend="threads",
                capacity=2)
        assert not isinstance(info.value, MultiNodeError)
        assert info.value.node_name == "b0"

    def test_worker_raises_mid_farm_terminates_run(self):
        """A worker dying mid-stream must not hang emitter/collector."""

        class MidBomb(Node):
            def svc(self, item):
                if item >= 10:
                    raise RuntimeError("mid-stream death")
                return item

        farm = Farm([MidBomb(name="m0"), MidBomb(name="m1")],
                    scheduling="roundrobin")
        with pytest.raises(NodeError):
            run(Pipeline([range(100), farm]), backend="threads",
                capacity=4)


class TestSequentialEquivalence:
    def test_sequential_wraps_in_node_error(self):
        with pytest.raises(NodeError) as info:
            run(Pipeline([range(20), _two_bomb_farm()]),
                backend="sequential")
        assert info.value.node_name in {"b0", "b1"}
        assert isinstance(info.value.original, RuntimeError)

    def test_both_backends_raise_node_error_same_origin(self):
        """Equivalence under injected node errors: both executors report
        a NodeError whose original exception comes from a bomb worker."""
        observed = {}
        for backend in ("threads", "sequential"):
            with pytest.raises(NodeError) as info:
                run(Pipeline([range(20), _two_bomb_farm()]),
                    backend=backend, capacity=2)
            observed[backend] = info.value
        for err in observed.values():
            assert isinstance(err.original, RuntimeError)
            assert err.node_name in {"b0", "b1"}

    def test_sequential_releases_other_nodes_on_error(self):
        """After a mid-graph failure the interpreter must still close the
        remaining nodes (svc_end runs, channels are released)."""
        ended = []

        class Recording(Node):
            def svc(self, item):
                return item

            def svc_end(self):
                ended.append(self.name)

        class Bomb(Node):
            def svc(self, item):
                raise ValueError("boom")

        with pytest.raises(NodeError):
            run(Pipeline([range(5), Recording(name="up"), Bomb(),
                          Recording(name="down")]),
                backend="sequential")
        assert "down" in ended

    def test_sequential_source_error_wrapped(self):
        def broken():
            yield 1
            raise ValueError("source broke")

        from repro.ff.node import SourceNode

        class BrokenSource(SourceNode):
            def generate(self):
                return broken()

        with pytest.raises(NodeError) as info:
            run(Pipeline([BrokenSource(), lambda x: x]),
                backend="sequential")
        assert isinstance(info.value.original, ValueError)


class TestAcceleratorFailures:
    def test_accelerator_aggregates_worker_errors(self):
        acc = Accelerator(_two_bomb_farm(), capacity=2).start()
        for i in range(20):
            acc.offload(i)
        with pytest.raises(NodeError) as info:
            acc.collect()
        err = info.value
        assert isinstance(err, MultiNodeError)
        assert {e.node_name for e in err.errors} == {"b0", "b1"}

    def test_accelerator_single_error_plain(self):
        acc = Accelerator(Pipeline([lambda x: 1 / x]), capacity=4).start()
        acc.offload(0)
        with pytest.raises(NodeError) as info:
            acc.collect()
        assert not isinstance(info.value, MultiNodeError)
        assert isinstance(info.value.original, ZeroDivisionError)
