"""Farm pattern semantics: replication, ordering, scheduling, nesting."""

import collections

import pytest

from repro.ff import Farm, FunctionNode, GO_ON, Node, Pipeline, run
from repro.ff.errors import GraphError

BACKENDS = ("sequential", "threads")


@pytest.mark.parametrize("backend", BACKENDS)
class TestUnorderedFarm:
    def test_results_are_a_permutation(self, backend):
        farm = Farm.replicate(lambda x: x * x, 4)
        out = run(Pipeline([range(20), farm]), backend=backend)
        assert sorted(out) == [x * x for x in range(20)]

    def test_single_worker(self, backend):
        farm = Farm.replicate(lambda x: x + 1, 1)
        out = run(Pipeline([range(5), farm]), backend=backend)
        assert out == [1, 2, 3, 4, 5]

    def test_round_robin_scheduling(self, backend):
        farm = Farm.replicate(lambda x: x, 3, scheduling="roundrobin")
        out = run(Pipeline([range(9), farm]), backend=backend)
        assert sorted(out) == list(range(9))

    def test_collector_node_sees_everything(self, backend):
        class Counter(Node):
            def __init__(self):
                super().__init__()
                self.count = 0

            def svc(self, item):
                self.count += 1
                return item

        collector = Counter()
        farm = Farm([FunctionNode(lambda x: x) for _ in range(3)],
                    collector=collector)
        out = run(Pipeline([range(12), farm]), backend=backend)
        assert collector.count == 12
        assert sorted(out) == list(range(12))

    def test_emitter_node_transforms(self, backend):
        farm = Farm([FunctionNode(lambda x: x + 1) for _ in range(2)],
                    emitter=FunctionNode(lambda x: x * 10))
        out = run(Pipeline([range(4), farm]), backend=backend)
        assert sorted(out) == [1, 11, 21, 31]


@pytest.mark.parametrize("backend", BACKENDS)
class TestOrderedFarm:
    def test_order_preserved(self, backend):
        farm = Farm.replicate(lambda x: x * 2, 4, ordered=True)
        out = run(Pipeline([range(50), farm]), backend=backend)
        assert out == [x * 2 for x in range(50)]

    def test_order_with_go_on_gaps(self, backend):
        def drop_odds(x):
            return x if x % 2 == 0 else GO_ON

        farm = Farm.replicate(drop_odds, 3, ordered=True)
        out = run(Pipeline([range(20), farm]), backend=backend)
        assert out == [x for x in range(20) if x % 2 == 0]

    def test_order_with_multi_emit(self, backend):
        class Expand(Node):
            def svc(self, item):
                self.ff_send_out(item)
                self.ff_send_out(-item)
                return GO_ON

        farm = Farm([Expand(name=f"e{i}") for i in range(3)], ordered=True)
        out = run(Pipeline([range(1, 6), farm]), backend=backend)
        assert out == [1, -1, 2, -2, 3, -3, 4, -4, 5, -5]

    def test_ordered_with_collector(self, backend):
        seen = []

        def collect(stats):
            seen.append(stats)
            return stats

        farm = Farm.replicate(lambda x: x + 100, 4, ordered=True,
                              collector=collect)
        out = run(Pipeline([range(10), farm]), backend=backend)
        assert out == [x + 100 for x in range(10)]
        assert seen == out


@pytest.mark.parametrize("backend", BACKENDS)
class TestFarmOfPipelines:
    def test_pipeline_workers(self, backend):
        workers = [Pipeline([lambda x: x * 2, lambda x: x + 1],
                            name=f"w{i}") for i in range(3)]
        farm = Farm(workers)
        out = run(Pipeline([range(10), farm]), backend=backend)
        assert sorted(out) == [x * 2 + 1 for x in range(10)]

    def test_farm_inside_pipeline_inside_farm_stage(self, backend):
        inner_farm = Farm.replicate(lambda x: x + 1, 2)
        pipe = Pipeline([range(6), inner_farm, lambda x: x * 10])
        out = run(pipe, backend=backend)
        assert sorted(out) == [10, 20, 30, 40, 50, 60]


class TestFarmValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(GraphError):
            Farm([])

    def test_replicate_width_validated(self):
        with pytest.raises(GraphError):
            Farm.replicate(lambda x: x, 0)

    def test_ordered_feedback_conflict(self):
        with pytest.raises(GraphError):
            Farm([FunctionNode(lambda x: x)], emitter=FunctionNode(lambda x: x),
                 ordered=True, feedback=True)

    def test_feedback_needs_emitter(self):
        with pytest.raises(GraphError):
            Farm([FunctionNode(lambda x: x)], feedback=True)

    def test_unknown_scheduling(self):
        with pytest.raises(GraphError):
            Farm([FunctionNode(lambda x: x)], scheduling="magic")

    def test_ordered_pipeline_workers_rejected(self):
        with pytest.raises(GraphError):
            Farm([Pipeline([lambda x: x])], ordered=True)

    def test_farm_as_head_needs_emitter(self):
        farm = Farm.replicate(lambda x: x, 2)
        with pytest.raises(GraphError):
            run(farm, backend="sequential")

    def test_replicate_factory_instances(self):
        class Worker(Node):
            def svc(self, item):
                return item

        farm = Farm.replicate(Worker, 3)
        assert farm.width == 3
        assert len({id(w) for w in farm.workers}) == 3


class TestLoadDistribution:
    def test_ondemand_spreads_work_across_workers(self):
        counts = collections.Counter()

        class Tagger(Node):
            def __init__(self, wid):
                super().__init__(name=f"w{wid}")
                self.wid = wid

            def svc(self, item):
                counts[self.wid] += 1
                return item

        farm = Farm([Tagger(i) for i in range(4)])
        run(Pipeline([range(100), farm]), backend="sequential")
        assert sum(counts.values()) == 100
        # sequential round-robin stepping makes distribution near-uniform
        assert all(counts[i] > 0 for i in range(4))
