"""Master-worker (feedback farm) semantics: the paper's simulation farm
skeleton."""

import pytest

from repro.ff import Farm, GO_ON, MasterWorkerEmitter, Node, Pipeline, run
from repro.ff.graph import ToWorker

BACKENDS = ("sequential", "threads")


class CountdownTask:
    """A task that needs ``n`` quanta of work."""

    def __init__(self, tid, n):
        self.tid = tid
        self.n = n
        self.history = []


class CountdownEmitter(MasterWorkerEmitter):
    def is_complete(self, task):
        return task.n <= 0


class CountdownWorker(Node):
    def svc(self, task):
        task.n -= 1
        task.history.append(self.name)
        self.ff_send_out((task.tid, task.n))
        self.send_feedback(task)
        return GO_ON


def make_farm(n_workers=3):
    return Farm([CountdownWorker(name=f"w{i}") for i in range(n_workers)],
                emitter=CountdownEmitter(), feedback=True)


@pytest.mark.parametrize("backend", BACKENDS)
class TestMasterWorker:
    def test_every_quantum_streamed(self, backend):
        tasks = [CountdownTask(i, 3) for i in range(4)]
        out = run(Pipeline([tasks, make_farm()]), backend=backend)
        expected = [(tid, n) for tid in range(4) for n in (2, 1, 0)]
        assert sorted(out) == sorted(expected)

    def test_unbalanced_tasks_all_complete(self, backend):
        tasks = [CountdownTask(i, n) for i, n in enumerate((1, 7, 2, 5))]
        out = run(Pipeline([tasks, make_farm()]), backend=backend)
        assert len(out) == 1 + 7 + 2 + 5
        assert all(task.n == 0 for task in tasks)

    def test_emitter_counts(self, backend):
        emitter = CountdownEmitter()
        farm = Farm([CountdownWorker(name=f"w{i}") for i in range(2)],
                    emitter=emitter, feedback=True)
        tasks = [CountdownTask(i, 2) for i in range(3)]
        run(Pipeline([tasks, farm]), backend=backend)
        assert emitter.completed == 3
        assert emitter.in_flight == 0
        assert emitter.upstream_done

    def test_single_worker_feedback(self, backend):
        tasks = [CountdownTask(0, 5)]
        out = run(Pipeline([tasks, make_farm(1)]), backend=backend)
        assert [n for _tid, n in out] == [4, 3, 2, 1, 0]

    def test_empty_task_stream(self, backend):
        out = run(Pipeline([[], make_farm()]), backend=backend)
        assert out == []

    def test_work_spreads_over_workers(self, backend):
        tasks = [CountdownTask(i, 10) for i in range(6)]
        run(Pipeline([tasks, make_farm(3)]), backend=backend)
        used = {name for task in tasks for name in task.history}
        assert len(used) >= 2  # more than one worker actually ran quanta


class StoppingEmitter(CountdownEmitter):
    """Retires every fed-back task once `stop_after` completions happened
    (the steering use case)."""

    def __init__(self, stop_after):
        super().__init__()
        self.stop_after = stop_after

    def is_complete(self, task):
        return task.n <= 0 or self.completed >= self.stop_after


@pytest.mark.parametrize("backend", BACKENDS)
class TestEarlyTermination:
    def test_emitter_drains_early(self, backend):
        tasks = [CountdownTask(i, 100) for i in range(4)]
        farm = Farm([CountdownWorker(name=f"w{i}") for i in range(2)],
                    emitter=StoppingEmitter(stop_after=1), feedback=True)
        out = run(Pipeline([tasks, farm]), backend=backend)
        # far fewer than the 400 quanta a full run would take
        assert 0 < len(out) < 400


class DirectedEmitter(MasterWorkerEmitter):
    """Pins every task to worker (tid % width): ToWorker routing."""

    def __init__(self, width):
        super().__init__()
        self.width = width

    def is_complete(self, task):
        return task.n <= 0

    def on_task(self, task):
        return ToWorker(task.tid % self.width, task)

    def on_reschedule(self, task):
        return ToWorker(task.tid % self.width, task)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDirectedDispatch:
    def test_to_worker_affinity(self, backend):
        width = 3
        tasks = [CountdownTask(i, 4) for i in range(6)]
        farm = Farm([CountdownWorker(name=f"w{i}") for i in range(width)],
                    emitter=DirectedEmitter(width), feedback=True)
        run(Pipeline([tasks, farm]), backend=backend)
        for task in tasks:
            assert set(task.history) == {f"w{task.tid % width}"}
