"""Direct unit tests of the routing building blocks (graph IR)."""

import pytest

from repro.ff.errors import GraphError
from repro.ff.graph import (
    ChannelOutbox,
    DispatchOutbox,
    NullOutbox,
    TaggingOutbox,
    ToWorker,
)
from repro.ff.queues import Channel, GroupDone


def channels(n, capacity=16):
    return [Channel(capacity=capacity, name=f"w{i}") for i in range(n)]


class TestChannelOutbox:
    def test_send_and_close(self):
        ch = Channel()
        outbox = ChannelOutbox(ch)
        outbox.send("x")
        outbox.close()
        assert list(ch.drain()) == ["x"]

    def test_force_bypasses_capacity(self):
        ch = Channel(capacity=1)
        outbox = ChannelOutbox(ch, force=True)
        outbox.send(1)
        outbox.send(2)  # would block without force
        assert len(ch) == 2

    def test_force_respects_abandon(self):
        ch = Channel(capacity=1)
        outbox = ChannelOutbox(ch, force=True)
        ch.abandon()
        outbox.send(1)
        assert len(ch) == 0


class TestDispatchOutbox:
    def test_round_robin_cycles(self):
        targets = channels(3)
        outbox = DispatchOutbox(targets, policy="roundrobin")
        for i in range(6):
            outbox.send(i)
        assert [len(c) for c in targets] == [2, 2, 2]
        got, first = targets[0].try_pop()
        assert got and first == 0

    def test_ondemand_prefers_empty_queue(self):
        targets = channels(3)
        outbox = DispatchOutbox(targets, policy="ondemand")
        # preload worker 0 and 1
        targets[0].push("busy")
        targets[1].push("busy")
        outbox.send("task")
        assert len(targets[2]) == 1

    def test_ondemand_tie_break_rotates(self):
        targets = channels(2)
        outbox = DispatchOutbox(targets, policy="ondemand")
        outbox.send("a")
        outbox.send("b")
        assert len(targets[0]) == 1 and len(targets[1]) == 1

    def test_to_worker_overrides_policy(self):
        targets = channels(3)
        outbox = DispatchOutbox(targets, policy="roundrobin")
        outbox.send(ToWorker(2, "pinned"))
        assert len(targets[2]) == 1 and len(targets[0]) == 0

    def test_to_worker_index_wraps(self):
        targets = channels(2)
        outbox = DispatchOutbox(targets)
        outbox.send(ToWorker(5, "x"))  # 5 % 2 == 1
        assert len(targets[1]) == 1

    def test_close_closes_all(self):
        targets = channels(2)
        outbox = DispatchOutbox(targets)
        outbox.close()
        for target in targets:
            got, item = target.try_pop()
            assert got and isinstance(item, GroupDone)

    def test_unknown_policy(self):
        with pytest.raises(GraphError):
            DispatchOutbox(channels(1), policy="sorcery")


class TestTaggingOutbox:
    def test_sequence_tags_monotone(self):
        ch = Channel()
        outbox = TaggingOutbox(ChannelOutbox(ch))
        for value in "abc":
            outbox.send(value)
        outbox.close()
        assert list(ch.drain()) == [(0, "a"), (1, "b"), (2, "c")]

    def test_to_worker_payload_is_tagged(self):
        targets = channels(2)
        outbox = TaggingOutbox(DispatchOutbox(targets))
        outbox.send(ToWorker(1, "pinned"))
        got, item = targets[1].try_pop()
        assert got and item == (0, "pinned")


class TestNullOutbox:
    def test_noop(self):
        outbox = NullOutbox()
        outbox.send("dropped")
        outbox.close()
