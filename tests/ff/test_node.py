"""Node API behaviour."""

import pytest

from repro.ff.node import (
    EOS,
    Emit,
    FunctionNode,
    GO_ON,
    Node,
    SinkNode,
    SourceNode,
    as_node,
)


class TestNodeBasics:
    def test_default_name_is_class_name(self):
        class MyStage(Node):
            def svc(self, item):
                return item

        assert MyStage().name == "MyStage"

    def test_explicit_name(self):
        assert FunctionNode(lambda x: x, name="double").name == "double"

    def test_svc_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Node().svc(1)

    def test_send_outside_graph_raises(self):
        node = FunctionNode(lambda x: x)
        with pytest.raises(RuntimeError):
            node.ff_send_out(1)
        with pytest.raises(RuntimeError):
            node.send_feedback(1)

    def test_has_feedback_false_by_default(self):
        assert not FunctionNode(lambda x: x).has_feedback


class TestSourceNode:
    def test_from_iterable(self):
        src = SourceNode([1, 2, 3])
        assert list(src.generate()) == [1, 2, 3]

    def test_generate_must_be_provided(self):
        with pytest.raises(NotImplementedError):
            list(SourceNode().generate())

    def test_svc_is_forbidden(self):
        with pytest.raises(RuntimeError):
            SourceNode([1]).svc(1)

    def test_subclass_generator(self):
        class Counter(SourceNode):
            def generate(self):
                yield from range(4)

        assert list(Counter().generate()) == [0, 1, 2, 3]


class TestSinkAndFunction:
    def test_sink_collects_and_goes_on(self):
        sink = SinkNode()
        assert sink.svc("a") is GO_ON
        assert sink.svc("b") is GO_ON
        assert sink.results == ["a", "b"]

    def test_function_node_wraps_callable(self):
        node = FunctionNode(lambda x: x * 2)
        assert node.svc(21) == 42

    def test_function_node_name_from_callable(self):
        def halve(x):
            return x / 2

        assert FunctionNode(halve).name == "halve"


class TestAsNode:
    def test_node_passthrough(self):
        node = SinkNode()
        assert as_node(node) is node

    def test_callable_wrapped(self):
        assert isinstance(as_node(lambda x: x), FunctionNode)

    def test_sequence_wrapped(self):
        assert isinstance(as_node([1, 2]), SourceNode)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_node(42)


class TestEmit:
    def test_emit_holds_items(self):
        emit = Emit(x * x for x in range(3))
        assert emit.items == [0, 1, 4]

    def test_sentinels_are_distinct(self):
        assert GO_ON is not EOS
        assert repr(GO_ON) == "GO_ON"
        assert repr(EOS) == "EOS"
