"""High-level pattern semantics (parallel_for, map, reduce, D&C)."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.ff.patterns import (
    _chunks,
    divide_and_conquer,
    map_reduce,
    parallel_for,
    pmap,
    preduce,
)


def _double(x):
    return x * 2


class TestPmap:
    @pytest.mark.parametrize("executor", ["sequential", "threads"])
    def test_order_preserved(self, executor):
        assert pmap(_double, range(10), n_workers=3,
                    executor=executor) == [x * 2 for x in range(10)]

    def test_empty(self):
        assert pmap(_double, []) == []

    def test_single_item_shortcut(self):
        assert pmap(_double, [21]) == [42]

    def test_processes_executor(self):
        out = pmap(_double, range(20), n_workers=2, executor="processes")
        assert out == [x * 2 for x in range(20)]

    def test_unknown_executor(self):
        from repro.ff.errors import GraphError
        with pytest.raises(GraphError):
            pmap(_double, range(4), executor="gpu")

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_matches_builtin_map(self, items, n):
        assert pmap(_double, items, n_workers=n) == list(map(_double, items))


class TestParallelFor:
    def test_range_semantics(self):
        assert parallel_for(2, 10, lambda i: i, step=3) == [2, 5, 8]

    def test_empty_range(self):
        assert parallel_for(5, 5, lambda i: i) == []


class TestPreduce:
    def test_sum(self):
        assert preduce(operator.add, range(101)) == 5050

    def test_initial_value(self):
        assert preduce(operator.add, [1, 2, 3], initial=10) == 16

    def test_empty_with_initial(self):
        assert preduce(operator.add, [], initial=7) == 7

    def test_empty_without_initial_raises(self):
        with pytest.raises(ValueError):
            preduce(operator.add, [])

    def test_non_commutative_associative(self):
        # string concatenation: associative but not commutative
        parts = [chr(ord("a") + i) for i in range(20)]
        assert preduce(operator.add, parts, n_workers=4) == "".join(parts)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
           st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_sum(self, items, n):
        assert preduce(operator.add, items, n_workers=n) == sum(items)


class TestMapReduce:
    def test_word_count(self):
        docs = ["a b a", "b c", "a"]
        counts = map_reduce(
            lambda doc: [(w, 1) for w in doc.split()],
            operator.add, docs, n_workers=2)
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_empty_input(self):
        assert map_reduce(lambda x: [(x, 1)], operator.add, []) == {}


class TestDivideAndConquer:
    def test_mergesort(self):
        data = [5, 3, 9, 1, 7, 2, 8, 6, 4, 0]

        def merge(parts):
            out = []
            for part in parts:
                out.extend(part)
            return sorted(out)

        result = divide_and_conquer(
            data,
            is_base=lambda p: len(p) <= 2,
            base_solve=sorted,
            divide=lambda p: [p[:len(p) // 2], p[len(p) // 2:]],
            conquer=merge)
        assert result == sorted(data)

    def test_base_case_direct(self):
        result = divide_and_conquer(
            [1], is_base=lambda p: len(p) <= 2, base_solve=sorted,
            divide=lambda p: [], conquer=lambda parts: parts)
        assert result == [1]

    def test_fib(self):
        def fib_dc(n):
            return divide_and_conquer(
                n, is_base=lambda k: k < 2, base_solve=lambda k: k,
                divide=lambda k: [k - 1, k - 2], conquer=sum, n_workers=2)

        assert fib_dc(12) == 144


class TestChunks:
    def test_even_split(self):
        assert _chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_spread(self):
        chunks = _chunks(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for c in chunks for x in c] == list(range(10))

    def test_more_chunks_than_items(self):
        assert _chunks([1, 2], 5) == [[1], [2]]

    def test_empty(self):
        assert _chunks([], 3) == []
