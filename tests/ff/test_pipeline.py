"""Pipeline pattern semantics on both executors."""

import pytest

from repro.ff import EOS, Emit, GO_ON, FunctionNode, Node, Pipeline, run
from repro.ff.errors import GraphError

BACKENDS = ("sequential", "threads")


@pytest.mark.parametrize("backend", BACKENDS)
class TestLinearPipelines:
    def test_identity(self, backend):
        assert run(Pipeline([range(5)]), backend=backend) == [0, 1, 2, 3, 4]

    def test_two_stages(self, backend):
        out = run(Pipeline([range(5), lambda x: x + 10]), backend=backend)
        assert out == [10, 11, 12, 13, 14]

    def test_three_stages_compose_in_order(self, backend):
        out = run(Pipeline([range(4), lambda x: x * 2, lambda x: x + 1]),
                  backend=backend)
        assert out == [1, 3, 5, 7]

    def test_nested_pipeline(self, backend):
        inner = Pipeline([lambda x: x * 2, lambda x: x - 1])
        out = run(Pipeline([range(4), inner, lambda x: x * 10]),
                  backend=backend)
        assert out == [-10, 10, 30, 50]

    def test_go_on_filters(self, backend):
        def keep_even(x):
            return x if x % 2 == 0 else GO_ON

        out = run(Pipeline([range(8), keep_even]), backend=backend)
        assert out == [0, 2, 4, 6]

    def test_emit_expands(self, backend):
        out = run(Pipeline([range(3), lambda x: Emit([x] * x)]),
                  backend=backend)
        assert out == [1, 2, 2]

    def test_node_terminates_stream_with_eos(self, backend):
        class Until3(Node):
            def svc(self, item):
                if item >= 3:
                    return EOS
                return item

        out = run(Pipeline([range(100), Until3()]), backend=backend)
        assert out == [0, 1, 2]

    def test_ff_send_out_multiple(self, backend):
        class Duplicator(Node):
            def svc(self, item):
                self.ff_send_out(item)
                self.ff_send_out(item)
                return GO_ON

        out = run(Pipeline([range(3), Duplicator()]), backend=backend)
        assert out == [0, 0, 1, 1, 2, 2]

    def test_svc_end_can_flush(self, backend):
        class SumAtEnd(Node):
            def __init__(self):
                super().__init__()
                self.total = 0

            def svc(self, item):
                self.total += item
                return GO_ON

            def svc_end(self):
                self.ff_send_out(self.total)

        out = run(Pipeline([range(10), SumAtEnd()]), backend=backend)
        assert out == [45]

    def test_empty_source(self, backend):
        assert run(Pipeline([[], lambda x: x]), backend=backend) == []

    def test_collect_false_returns_nothing(self, backend):
        assert run(Pipeline([range(3)]), backend=backend,
                   collect=False) == []


class TestPipelineConstruction:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(GraphError):
            Pipeline([])

    def test_rshift_sugar(self):
        pipe = Pipeline([range(3)]) >> (lambda x: x + 1)
        assert run(pipe, backend="sequential") == [1, 2, 3]

    def test_len(self):
        assert len(Pipeline([range(3), lambda x: x])) == 2

    def test_head_must_be_source(self):
        with pytest.raises(GraphError):
            run(Pipeline([lambda x: x]), backend="sequential")

    def test_same_node_twice_rejected(self):
        node = FunctionNode(lambda x: x)
        with pytest.raises(GraphError):
            run(Pipeline([range(3), node, node]), backend="sequential")


class TestErrorPropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stage_exception_surfaces(self, backend):
        def boom(x):
            if x == 2:
                raise ValueError("kaboom")
            return x

        from repro.ff.errors import NodeError
        with pytest.raises((NodeError, ValueError)):
            run(Pipeline([range(5), boom]), backend=backend)

    def test_threads_wrap_in_node_error(self):
        from repro.ff.errors import NodeError

        def boom(x):
            raise RuntimeError("inner")

        with pytest.raises(NodeError) as info:
            run(Pipeline([range(3), boom]), backend="threads")
        assert isinstance(info.value.original, RuntimeError)
