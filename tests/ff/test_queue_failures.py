"""Channel failure paths: timeout deadlines, abandonment while blocked,
and atomic stats snapshots under concurrency.

The timeout tests are regressions for a real bug: ``push``/``pop`` used
to restart ``Condition.wait(timeout)`` from scratch on every wakeup, so a
producer that kept being notified while the channel was still full would
block arbitrarily longer than its timeout.  The fix uses a deadline and
waits only the remaining budget.
"""

import threading
import time

import pytest

from repro.ff.queues import Channel


class TestTimeoutDeadline:
    def test_push_timeout_total_despite_notifications(self):
        """A producer notified every 50ms while the queue stays full must
        still raise TimeoutError ~at its 0.3s deadline (pre-fix: every
        notification restarted the full timeout and it never expired)."""
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push("fill")
        stop = threading.Event()

        def churn():
            # keep the queue full but notify the producer continuously;
            # self-bounded so the pre-fix code fails instead of hanging
            deadline = time.monotonic() + 2.0
            while not stop.is_set() and time.monotonic() < deadline:
                time.sleep(0.05)
                with ch._lock:
                    ch._not_full.notify_all()

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        started = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                ch.push("blocked", timeout=0.3)
        finally:
            stop.set()
            churner.join()
        elapsed = time.monotonic() - started
        assert 0.25 <= elapsed < 1.2, elapsed

    def test_pop_timeout_total_despite_notifications(self):
        ch = Channel(capacity=4)
        ch.register_producer()
        stop = threading.Event()

        def churn():
            deadline = time.monotonic() + 2.0
            while not stop.is_set() and time.monotonic() < deadline:
                time.sleep(0.05)
                with ch._lock:
                    ch._not_empty.notify_all()

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        started = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                ch.pop(timeout=0.3)
        finally:
            stop.set()
            churner.join()
        elapsed = time.monotonic() - started
        assert 0.25 <= elapsed < 1.2, elapsed

    def test_push_succeeds_within_deadline(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push(1)

        def consume_later():
            time.sleep(0.05)
            ch.pop()

        threading.Thread(target=consume_later, daemon=True).start()
        assert ch.push(2, timeout=2.0) is True

    def test_zero_ish_timeout_expires_immediately(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push(1)
        with pytest.raises(TimeoutError):
            ch.push(2, timeout=0.001)
        with pytest.raises(TimeoutError):
            Channel(capacity=1).pop(timeout=0.001)


class TestAbandonWhileBlocked:
    def test_blocked_push_returns_false_on_abandon(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push("fill")
        outcome = {}
        blocked = threading.Event()

        def producer():
            blocked.set()
            outcome["pushed"] = ch.push("extra")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        blocked.wait(1.0)
        time.sleep(0.05)  # let it actually block on the full queue
        ch.abandon()
        thread.join(timeout=1.0)
        assert not thread.is_alive()
        assert outcome["pushed"] is False

    def test_blocked_push_with_timeout_released_by_abandon(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push("fill")
        outcome = {}

        def producer():
            outcome["pushed"] = ch.push("extra", timeout=5.0)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        started = time.monotonic()
        ch.abandon()
        thread.join(timeout=1.0)
        assert not thread.is_alive()
        assert time.monotonic() - started < 1.0  # released early, not at 5s
        assert outcome["pushed"] is False


class TestStatsSnapshot:
    def test_snapshot_is_internally_consistent_under_concurrency(self):
        """stats() must be atomic: pushed - popped == length in every
        sample, even while producers and consumers run concurrently."""
        ch = Channel(capacity=64)
        ch.register_producer()
        n = 20_000

        def producer():
            for i in range(n):
                ch.push(i)
            ch.producer_done()

        def consumer():
            for _ in iter(ch.drain()):
                pass

        threads = [threading.Thread(target=producer, daemon=True),
                   threading.Thread(target=consumer, daemon=True)]
        for t in threads:
            t.start()
        violations = []
        while any(t.is_alive() for t in threads):
            s = ch.stats()
            # the in-band GroupDone token enters the queue without a
            # push, so length may exceed pushed - popped by at most 1
            if s.length - (s.pushed - s.popped) not in (0, 1):
                violations.append(s)
        for t in threads:
            t.join()
        assert not violations, violations[:3]
        final = ch.stats()
        assert final.pushed == n
        assert final.high_water <= 64 + 1  # + in-band GroupDone token

    def test_stats_fields(self):
        ch = Channel(capacity=4, name="probe")
        ch.register_producer()
        ch.push(1)
        ch.push(2)
        ch.pop()
        s = ch.stats()
        assert (s.name, s.capacity) == ("probe", 4)
        assert (s.pushed, s.popped, s.length) == (2, 1, 1)
        assert s.high_water == 2
        assert not s.abandoned and not s.closed
        ch.producer_done()
        assert ch.stats().closed

    def test_locked_counters(self):
        ch = Channel(capacity=4)
        ch.register_producer()
        for i in range(3):
            ch.push(i)
        ch.pop()
        assert ch.total_pushed == 3
        assert ch.total_popped == 1

    def test_high_water_survives_abandon(self):
        ch = Channel(capacity=8)
        ch.register_producer()
        for i in range(5):
            ch.push(i)
        ch.abandon()
        assert ch.stats().high_water == 5
        assert ch.stats().abandoned
