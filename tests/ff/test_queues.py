"""Channel building-block semantics."""

import threading

import pytest

from repro.ff.errors import QueueClosedError
from repro.ff.queues import Channel, EOS, GroupDone, SPSCQueue


class TestBasicFifo:
    def test_push_pop_order(self):
        ch = Channel(capacity=8)
        ch.register_producer()
        for i in range(5):
            ch.push(i)
        assert [ch.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_tracks_queue(self):
        ch = Channel(capacity=8)
        ch.register_producer()
        assert len(ch) == 0
        ch.push("x")
        assert len(ch) == 1
        ch.pop()
        assert len(ch) == 0

    def test_counters(self):
        ch = Channel(capacity=8)
        ch.register_producer()
        for i in range(3):
            ch.push(i)
        ch.pop()
        assert ch.total_pushed == 3
        assert ch.total_popped == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)


class TestEndOfStream:
    def test_eos_after_all_producers_done(self):
        ch = Channel()
        ch.register_producer()
        ch.push(1)
        ch.producer_done()
        assert ch.pop() == 1
        token = ch.pop()
        assert isinstance(token, GroupDone)
        assert ch.pop() is EOS

    def test_two_producers_same_group(self):
        ch = Channel()
        ch.register_producer()
        ch.register_producer()
        ch.producer_done()
        # one producer still alive: no EOS yet
        got, _ = ch.try_pop()
        assert not got
        ch.producer_done()
        got, item = ch.try_pop()
        assert got and isinstance(item, GroupDone)
        got, item = ch.try_pop()
        assert got and item is EOS

    def test_group_done_tokens_per_group(self):
        ch = Channel()
        ch.register_producer("upstream")
        ch.register_producer("feedback")
        ch.producer_done("upstream")
        token = ch.pop()
        assert token == GroupDone("upstream")
        # feedback still open
        got, _ = ch.try_pop()
        assert not got
        ch.producer_done("feedback")
        assert ch.pop() == GroupDone("feedback")
        assert ch.pop() is EOS

    def test_producer_done_without_register_raises(self):
        ch = Channel()
        with pytest.raises(QueueClosedError):
            ch.producer_done()

    def test_too_many_producer_done_raises(self):
        ch = Channel()
        ch.register_producer()
        ch.producer_done()
        with pytest.raises(QueueClosedError):
            ch.producer_done()

    def test_closed_property(self):
        ch = Channel()
        assert not ch.closed  # no producers registered yet
        ch.register_producer()
        assert not ch.closed
        ch.producer_done()
        assert ch.closed


class TestBackpressure:
    def test_push_blocks_until_pop(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push("first")
        done = threading.Event()

        def producer():
            ch.push("second")  # blocks until consumer pops
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(0.05)
        assert ch.pop() == "first"
        assert done.wait(1.0)
        assert ch.pop() == "second"

    def test_push_timeout(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push(1)
        with pytest.raises(TimeoutError):
            ch.push(2, timeout=0.01)

    def test_pop_timeout(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        with pytest.raises(TimeoutError):
            ch.pop(timeout=0.01)


class TestAbandon:
    def test_push_after_abandon_is_dropped(self):
        ch = Channel(capacity=2)
        ch.register_producer()
        ch.abandon()
        assert ch.push("ignored") is False
        assert len(ch) == 0

    def test_abandon_releases_blocked_producer(self):
        ch = Channel(capacity=1)
        ch.register_producer()
        ch.push(1)
        released = threading.Event()

        def producer():
            ch.push(2)
            released.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not released.wait(0.05)
        ch.abandon()
        assert released.wait(1.0)


class TestDrainAndSPSC:
    def test_drain_skips_tokens(self):
        ch = Channel()
        ch.register_producer()
        ch.push(1)
        ch.push(2)
        ch.producer_done()
        assert list(ch.drain()) == [1, 2]

    def test_spsc_close(self):
        q = SPSCQueue(capacity=4)
        q.push("a")
        q.close()
        assert list(q.drain()) == ["a"]
