"""Structures must be reusable: running the same graph twice must give
the same answer both times.

Regression for stateful nodes that kept per-run state across runs
(window indices kept counting, sinks accumulated results from previous
runs, feedback emitters remembered stale in-flight counts, aligners
rejected fresh grid points as "already emitted").
"""

import pytest

from repro.analysis.engines import GatherNode, StatEngineNode
from repro.analysis.windows import SlidingWindowNode
from repro.ff import Farm, GO_ON, MasterWorkerEmitter, Node, Pipeline, run
from repro.ff.node import SinkNode
from repro.sim.trajectory import Cut

BACKENDS = ("sequential", "threads")


def _cuts(n):
    return [Cut(grid_index=g, time=float(g), values=[(float(g),)])
            for g in range(n)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestSlidingWindowReuse:
    def test_two_runs_identical_windows(self, backend):
        node = SlidingWindowNode(size=4, slide=2)
        structure = Pipeline([_cuts(10), node])
        first = run(structure, backend=backend)
        second = run(structure, backend=backend)
        assert [w.index for w in first] == [w.index for w in second]
        assert ([[c.values for c in w.cuts] for w in first]
                == [[c.values for c in w.cuts] for w in second])
        assert first[0].index == 0  # indices restart, don't continue

    def test_no_leaked_tail_from_previous_run(self, backend):
        # 3 items with size=2/slide=2 leaves one cut buffered at EOS;
        # the partial tail must not leak into the next run's windows
        node = SlidingWindowNode(size=2, slide=2, emit_partial_tail=False)
        structure = Pipeline([_cuts(3), node])
        run(structure, backend=backend)
        second = run(structure, backend=backend)
        assert [[c.grid_index for c in w.cuts] for w in second] == [[0, 1]]


class _Task:
    def __init__(self, tid, n):
        self.tid = tid
        self.n = n


class _Emitter(MasterWorkerEmitter):
    def is_complete(self, task):
        return task.n <= 0


class _Worker(Node):
    def svc(self, task):
        task.n -= 1
        self.ff_send_out(task.tid)
        self.send_feedback(task)
        return GO_ON


@pytest.mark.parametrize("backend", BACKENDS)
class TestFeedbackFarmReuse:
    def test_emitter_state_reset_between_runs(self, backend):
        emitter = _Emitter()
        farm = Farm([_Worker(name=f"w{i}") for i in range(2)],
                    emitter=emitter, feedback=True)

        def go():
            tasks = [_Task(i, 2) for i in range(3)]
            return run(Pipeline([tasks, farm]), backend=backend)

        first = go()
        second = go()
        assert sorted(first) == sorted(second) == [0, 0, 1, 1, 2, 2]
        # completed counts this run only, not the cumulative total
        assert emitter.completed == 3
        assert emitter.in_flight == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestSinkAndEngineReuse:
    def test_sink_holds_only_latest_run(self, backend):
        sink = SinkNode()
        structure = Pipeline([range(5), lambda x: x * 2, sink])
        run(structure, backend=backend, collect=False)
        run(structure, backend=backend, collect=False)
        assert sink.results == [0, 2, 4, 6, 8]  # not doubled up

    def test_engine_counters_restart(self, backend):
        class _Win:
            """Minimal stand-in accepted by StatEngineNode."""

            def __init__(self, index):
                self.index = index
                self.cuts = []
                self.start_time = 0.0
                self.end_time = 1.0

        gather = GatherNode()
        engine = StatEngineNode()
        structure = Pipeline([[_Win(0), _Win(1)], engine, gather])
        run(structure, backend=backend)
        run(structure, backend=backend)
        assert engine.windows_processed == 2
        assert gather.results_gathered == 2
