"""Failure handling and termination robustness of the runtime."""

import pytest

from repro.ff import Farm, FunctionNode, GO_ON, MasterWorkerEmitter, Node, Pipeline, run
from repro.ff.errors import GraphError, NodeError


class TestFailureIsolation:
    def test_worker_death_does_not_deadlock_farm(self):
        """One farm worker dying must terminate the whole run with an
        error instead of hanging the emitter or collector."""

        class Bomb(Node):
            def svc(self, item):
                raise RuntimeError("worker died")

        farm = Farm([Bomb(name="b0"), FunctionNode(lambda x: x, name="ok")])
        with pytest.raises(NodeError):
            run(Pipeline([range(200), farm]), backend="threads")

    def test_emitter_death_terminates_downstream(self):
        class BadEmitter(Node):
            def svc(self, item):
                raise ValueError("emitter broken")

        farm = Farm.replicate(lambda x: x, 2)
        with pytest.raises(NodeError):
            run(Pipeline([range(10), BadEmitter(), farm]),
                backend="threads")

    def test_collector_death_releases_workers(self):
        class BadCollector(Node):
            def svc(self, item):
                raise ValueError("collector broken")

        farm = Farm.replicate(lambda x: x, 3, collector=BadCollector())
        with pytest.raises(NodeError):
            run(Pipeline([range(500), farm]), backend="threads",
                capacity=4)

    def test_error_in_svc_end_is_reported(self):
        class FlushBomb(Node):
            def svc(self, item):
                return item

            def svc_end(self):
                raise RuntimeError("flush failed")

        with pytest.raises(NodeError):
            run(Pipeline([range(3), FlushBomb()]), backend="threads")

    def test_source_generator_error(self):
        def broken():
            yield 1
            raise ValueError("source broke")

        from repro.ff.node import SourceNode

        class BrokenSource(SourceNode):
            def generate(self):
                return broken()

        with pytest.raises(NodeError):
            run(Pipeline([BrokenSource(), lambda x: x]), backend="threads")


class TestSequentialStallDetection:
    def test_never_terminating_emitter_detected(self):
        """A master-worker emitter that never retires tasks is a protocol
        bug; the sequential interpreter must report the stall instead of
        spinning forever."""

        class Immortal(MasterWorkerEmitter):
            def is_complete(self, task):
                return False  # never done -> tasks bounce forever

        class Worker(Node):
            def svc(self, task):
                self.send_feedback(task)
                return GO_ON

        farm = Farm([Worker(name="w")], emitter=Immortal(), feedback=True)
        # the run does not stall (tasks keep cycling), so bound it instead:
        # an emitter that lies about completion keeps the stream alive; we
        # detect that by capping the interpreter externally
        import threading

        result: dict = {}

        def target():
            try:
                run(Pipeline([[object()], farm]), backend="sequential")
                result["finished"] = True
            except Exception as exc:  # noqa: BLE001
                result["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(timeout=1.0)
        # the run must still be cycling (alive) -- i.e. the protocol bug
        # manifests as livelock in the *model*, never as a crash of the
        # interpreter machinery
        assert "error" not in result

    def test_stalled_graph_raises(self):
        """A node whose input can never arrive must be reported."""

        class Silent(Node):
            def svc(self, item):
                return GO_ON  # swallows everything

        class Downstream(Node):
            def svc(self, item):
                return item

        # Downstream gets EOS after Silent finishes: not a stall.  A real
        # stall needs a feedback loop that drops tasks: emitter waits for
        # completions that never come.
        class LosingWorker(Node):
            def svc(self, task):
                return GO_ON  # neither output nor feedback: task vanishes

        class CountingEmitter(MasterWorkerEmitter):
            def is_complete(self, task):
                return True

        farm = Farm([LosingWorker(name="w")], emitter=CountingEmitter(),
                    feedback=True)
        with pytest.raises(GraphError, match="stalled"):
            run(Pipeline([[1, 2, 3], farm]), backend="sequential")


class TestStressScale:
    def test_deep_pipeline(self):
        stages: list = [range(50)]
        for _ in range(20):
            stages.append(lambda x: x + 1)
        out = run(Pipeline(stages), backend="threads", capacity=4)
        assert out == [x + 20 for x in range(50)]

    def test_wide_farm(self):
        farm = Farm.replicate(lambda x: x * 3, 32, ordered=True)
        out = run(Pipeline([range(400), farm]), backend="threads")
        assert out == [x * 3 for x in range(400)]

    def test_many_small_runs_no_leaks(self):
        for i in range(30):
            out = run(Pipeline([range(5), lambda x: x]),
                      backend="sequential")
            assert out == list(range(5))
