"""Runtime tracing: per-node/per-channel metrics and the run report."""

import json

import pytest

from repro.ff import (
    Accelerator,
    Farm,
    GO_ON,
    Node,
    Pipeline,
    SourceNode,
    Tracer,
    run,
)
from repro.ff.trace import NodeTrace, RunReport

BACKENDS = ("threads", "sequential")


class _Emitting(Node):
    """One input -> two outputs, one via ff_send_out, one via return."""

    def svc(self, item):
        self.ff_send_out(item)
        return item


def _traced_run(backend):
    tracer = Tracer()
    out = run(Pipeline([range(50), lambda x: x + 1]), backend=backend,
              trace=tracer)
    return out, tracer.report()


class TestNodeStats:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_items_and_svc_counts(self, backend):
        out, report = _traced_run(backend)
        assert out == [x + 1 for x in range(50)]
        nodes = {n["name"]: n for n in report.nodes}
        fn = nodes["<lambda>"]
        assert fn["items_in"] == 50
        assert fn["items_out"] == 50
        assert fn["svc_calls"] == 50
        assert fn["svc_errors"] == 0
        assert fn["svc_time_s"]["total"] >= 0.0
        assert fn["svc_time_s"]["max"] >= fn["svc_time_s"]["min"]
        # the source records one svc (generation) per item, no items_in
        src = nodes["SourceNode"]
        assert src["items_in"] == 0
        assert src["items_out"] == 50

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ff_send_out_counted(self, backend):
        tracer = Tracer()
        out = run(Pipeline([range(10), _Emitting()]), backend=backend,
                  trace=tracer)
        assert len(out) == 20
        nodes = {n["name"]: n for n in tracer.report().nodes}
        assert nodes["_Emitting"]["items_out"] == 20

    def test_svc_errors_counted(self):
        class Bomb(Node):
            def svc(self, item):
                raise RuntimeError("boom")

        tracer = Tracer()
        with pytest.raises(Exception):
            run(Pipeline([range(5), Bomb()]), backend="threads",
                trace=tracer)
        nodes = {n["name"]: n for n in tracer.report().nodes}
        assert nodes["Bomb"]["svc_errors"] == 1

    def test_histogram_buckets_sum_to_calls(self):
        trace = NodeTrace("n")
        for dt in (1e-7, 5e-6, 2e-3, 0.3, 2.0):
            trace.record_svc(dt)
        snap = trace.snapshot()
        assert sum(snap["svc_histogram"].values()) == 5
        assert snap["svc_calls"] == 5


class TestChannelStats:
    def test_high_water_and_occupancy(self):
        tracer = Tracer()
        run(Pipeline([range(100), lambda x: x]), backend="threads",
            capacity=4, trace=tracer)
        chans = {c["name"]: c for c in tracer.report().channels}
        ch = chans["pipeline[0->1]"]
        assert ch["pushed"] == 100
        assert 1 <= ch["high_water"] <= 4
        assert ch["capacity"] == 4
        assert 0.0 < ch["mean_occupancy"] <= 4.0

    def test_blocked_push_recorded_on_backpressure(self):
        import time

        tracer = Tracer()
        run(Pipeline([range(40), lambda x: time.sleep(0.002) or x]),
            backend="threads", capacity=1, trace=tracer)
        chans = {c["name"]: c for c in tracer.report().channels}
        assert chans["pipeline[0->1]"]["blocked_push_s"] > 0.0
        assert chans["pipeline[0->1]"]["saturation"] == 1.0


class TestBottleneck:
    def test_slowest_stage_named(self):
        import time

        def slow(x):
            time.sleep(0.001)
            return x

        tracer = Tracer()
        run(Pipeline([range(30), lambda x: x, slow]), backend="threads",
            trace=tracer)
        bn = tracer.report().bottleneck()
        assert bn["slowest_stage"]["name"] == "slow"
        assert "slow" in bn["diagnosis"]

    def test_farm_imbalance_reported(self):
        tracer = Tracer()
        run(Pipeline([range(64), Farm.replicate(lambda x: x, 4)]),
            backend="threads", trace=tracer)
        imb = tracer.report().bottleneck()["farm_imbalance"]
        assert imb is not None
        assert imb["farm"] == "farm"
        assert imb["n_workers"] == 4
        assert 0.0 <= imb["imbalance"] <= 1.0

    def test_empty_report_has_diagnosis(self):
        report = Tracer().report()
        assert report.bottleneck()["diagnosis"] == "no activity recorded"


class TestCountersAndReport:
    def test_trace_incr_reaches_counters(self):
        class Counting(Node):
            def svc(self, item):
                self.trace_incr("domain.widgets", 2)
                return item

        tracer = Tracer()
        run(Pipeline([range(5), Counting()]), backend="sequential",
            trace=tracer)
        report = tracer.report()
        assert report.counters["domain.widgets"] == 10
        assert report.to_dict()["rates_per_s"]["domain.widgets"] > 0

    def test_trace_incr_noop_without_tracer(self):
        node = Node()
        node.trace_incr("x")  # must not raise

    def test_json_roundtrip_and_save(self, tmp_path):
        _, report = _traced_run("threads")
        data = json.loads(report.to_json())
        assert set(data) == {"wall_time_s", "nodes", "channels",
                             "counters", "rates_per_s", "bottleneck"}
        path = tmp_path / "report.json"
        report.save(path)
        assert json.loads(path.read_text())["wall_time_s"] > 0

    def test_to_text_renders(self):
        _, report = _traced_run("threads")
        text = report.to_text()
        assert "bottleneck:" in text
        assert "<lambda>" in text

    def test_report_is_plain_data(self):
        _, report = _traced_run("threads")
        assert isinstance(report, RunReport)
        json.dumps(report.to_dict())  # fully serialisable


class TestAcceleratorTracing:
    def test_offloaded_stream_traced(self):
        tracer = Tracer()
        with Accelerator(Pipeline([lambda x: x * 2]),
                         trace=tracer) as acc:
            for i in range(20):
                acc.offload(i)
        report = tracer.report()
        nodes = {n["name"]: n for n in report.nodes}
        assert nodes["<lambda>"]["items_in"] == 20
        chans = {c["name"]: c for c in report.channels}
        assert chans["acc-input"]["pushed"] == 20


class TestUntracedPathUnchanged:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_identical_with_and_without_trace(self, backend):
        structure = lambda: Pipeline(  # noqa: E731
            [range(100), Farm.replicate(lambda x: x * 3, 3, ordered=True)])
        plain = run(structure(), backend=backend)
        traced = run(structure(), backend=backend, trace=Tracer())
        assert plain == traced == [x * 3 for x in range(100)]

    def test_no_trace_attached_by_default(self):
        from repro.ff.executor import compile_graph

        graph = compile_graph(Pipeline([range(3), lambda x: x]), 8, True)
        assert all(ch._trace is None for ch in graph.channels)


class TestTracerAccumulation:
    def test_two_runs_accumulate(self):
        tracer = Tracer()
        run(Pipeline([range(10), lambda x: x]), backend="sequential",
            trace=tracer)
        run(Pipeline([range(10), lambda x: x]), backend="sequential",
            trace=tracer)
        nodes = {n["name"]: n for n in tracer.report().nodes}
        assert nodes["<lambda>"]["items_in"] == 20
