"""The GPU-offloaded workflow must equal the CPU workflow exactly."""

import pytest

from repro.gpu.device import tesla_k40
from repro.gpu.simt import SimtDevice
from repro.gpu.workflow import run_gpu_workflow
from repro.pipeline import WorkflowConfig, run_workflow


def config(**overrides):
    base = dict(n_simulations=6, t_end=6.0, sample_every=0.5, quantum=2.0,
                n_sim_workers=2, window_size=5, seed=0, keep_cuts=True)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestGpuWorkflow:
    def test_identical_to_cpu_workflow(self, neurospora_small):
        cpu = run_workflow(neurospora_small, config())
        gpu = run_gpu_workflow(neurospora_small, config(), block_size=3)
        cpu_stats = [(s.grid_index, s.mean, s.variance)
                     for s in cpu.cut_statistics()]
        gpu_stats = [(s.grid_index, s.mean, s.variance)
                     for s in gpu.workflow.cut_statistics()]
        assert cpu_stats == gpu_stats

    def test_device_accounting(self, neurospora_small):
        result = run_gpu_workflow(neurospora_small, config(), block_size=6)
        # one block, three quanta (t_end 6, quantum 2)
        assert result.total_kernels == 3
        assert result.total_device_time > 0

    def test_multi_device_split(self, neurospora_small):
        devices = [SimtDevice(tesla_k40()) for _ in range(2)]
        result = run_gpu_workflow(neurospora_small, config(),
                                  devices=devices, block_size=3)
        assert all(d.kernels_launched > 0 for d in devices)
        cpu = run_workflow(neurospora_small, config())
        assert [s.mean for s in result.workflow.cut_statistics()] == \
            [s.mean for s in cpu.cut_statistics()]

    def test_trajectories_retained(self, neurospora_small):
        result = run_gpu_workflow(neurospora_small, config(), block_size=2)
        assert len(result.workflow.trajectories()) == 6

    def test_sequential_backend(self, neurospora_small):
        cfg = config(backend="sequential")
        result = run_gpu_workflow(neurospora_small, cfg, block_size=3)
        assert result.workflow.n_windows >= 1

    def test_validation(self, neurospora_small):
        with pytest.raises(ValueError):
            run_gpu_workflow(neurospora_small, config(), devices=[])
        with pytest.raises(ValueError):
            run_gpu_workflow(neurospora_small, config(), block_size=0)
