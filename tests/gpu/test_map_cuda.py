"""The mapCUDA offloading node: functional equivalence with CPU engines."""

import pytest

from repro.cwc.network import FlatSimulator
from repro.ff import Farm, GO_ON, MasterWorkerEmitter, Pipeline, run
from repro.gpu.device import tesla_k40
from repro.gpu.map_cuda import MapCUDANode
from repro.gpu.simt import SimtDevice
from repro.sim.task import make_tasks
from repro.sim.alignment import TrajectoryAligner
from repro.sim.trajectory import assemble_trajectories, iter_cuts


class _BlockEmitter(MasterWorkerEmitter):
    """Streams whole blocks of simulations (the GPU version's unit)."""

    def is_complete(self, block):
        return all(task.done for task in block)


def gpu_block_workflow(network, n, t_end, quantum, sample_every, seed):
    """generation -> mapCUDA (with feedback) -> alignment."""
    device = SimtDevice(tesla_k40(), step_cost=1e-6)
    tasks = make_tasks(network, n, t_end, quantum, sample_every, seed=seed)
    farm = Farm([MapCUDANode(device)], emitter=_BlockEmitter(),
                collector=TrajectoryAligner(n), feedback=True)
    cuts = list(iter_cuts(run(Pipeline([[tasks], farm]),
                              backend="sequential")))
    return cuts, device


class TestMapCUDAFunctional:
    def test_results_identical_to_cpu_engine(self, neurospora_small):
        """Offloaded execution is functionally the CPU computation: every
        trajectory matches a direct run with the same seed."""
        n, t_end, dt, seed = 4, 4.0, 1.0, 3
        cuts, _device = gpu_block_workflow(
            neurospora_small, n, t_end, quantum=2.0, sample_every=dt,
            seed=seed)
        trajectories = assemble_trajectories(cuts, n)
        for task_id, trajectory in enumerate(trajectories):
            direct = FlatSimulator(neurospora_small,
                                   seed=seed + task_id).run(t_end, dt)
            assert trajectory.samples == direct.samples

    def test_device_time_accounted(self, neurospora_small):
        _cuts, device = gpu_block_workflow(
            neurospora_small, 4, 4.0, quantum=1.0, sample_every=1.0, seed=0)
        assert device.kernels_launched == 4  # one per quantum
        assert device.total_device_time > 0

    def test_all_cuts_produced(self, neurospora_small):
        cuts, _ = gpu_block_workflow(
            neurospora_small, 3, 6.0, quantum=1.5, sample_every=0.5, seed=1)
        assert [c.grid_index for c in cuts] == list(range(13))

    def test_local_loop_without_feedback(self, neurospora_small):
        """Without a feedback edge the node loops the block internally."""
        device = SimtDevice(tesla_k40(), step_cost=1e-6)
        node = MapCUDANode(device)
        tasks = make_tasks(neurospora_small, 2, 3.0, 1.0, 1.0, seed=0)
        collected = []

        class _Out:
            def send(self, item):
                collected.append(item)

        node._outbox = _Out()
        node.svc(tasks)
        assert all(task.done for task in tasks)
        grids = sorted(g for r in collected for g, _t, _v in r.samples)
        assert grids == sorted(list(range(4)) * 2)

    def test_empty_block(self):
        node = MapCUDANode(SimtDevice(tesla_k40()))
        assert node.svc([]) is GO_ON


class TestMapCUDABatchBlocks:
    """The batched kernel path: one BatchSimulationTask per stream item."""

    def _workflow(self, network, n, t_end, quantum, sample_every, seed):
        from repro.gpu.workflow import BlockEmitter
        from repro.sim.task import make_batch_tasks
        device = SimtDevice(tesla_k40(), step_cost=1e-6)
        tasks = make_batch_tasks(network, n, t_end, quantum, sample_every,
                                 seed=seed, batch_size=n)
        farm = Farm([MapCUDANode(device)], emitter=BlockEmitter(n_devices=1),
                    collector=TrajectoryAligner(n), feedback=True)
        cuts = list(iter_cuts(run(Pipeline([tasks, farm]),
                                  backend="sequential")))
        return cuts, device

    def test_all_cuts_produced(self, neurospora_small):
        n = 4
        cuts, device = self._workflow(
            neurospora_small, n, 6.0, quantum=1.5, sample_every=0.5, seed=1)
        assert [c.grid_index for c in cuts] == list(range(13))
        assert all(len(c.values) == n for c in cuts)
        assert device.kernels_launched > 0

    def test_one_kernel_per_quantum(self, neurospora_small):
        _cuts, device = self._workflow(
            neurospora_small, 4, 4.0, quantum=1.0, sample_every=1.0, seed=0)
        assert device.kernels_launched == 4

    def test_batch_local_loop_without_feedback(self, neurospora_small):
        from repro.sim.task import make_batch_tasks
        device = SimtDevice(tesla_k40(), step_cost=1e-6)
        node = MapCUDANode(device)
        block = make_batch_tasks(neurospora_small, 2, 3.0, 1.0, 1.0,
                                 seed=0, batch_size=2)[0]
        collected = []

        class _Out:
            def send(self, item):
                collected.append(item)

        node._outbox = _Out()
        node.svc(block)
        assert block.done
        grids = sorted(g for r in collected for g, _t, _v in r.samples)
        assert grids == sorted(list(range(4)) * 2)

    def test_launch_map_batched_stats(self, neurospora_small):
        from repro.cwc.batch import BatchFlatSimulator
        device = SimtDevice(tesla_k40(), step_cost=1e-6)
        batch = BatchFlatSimulator(neurospora_small, 8, seed=3)
        result, stats = device.launch_map_batched(
            lambda b: b.advance(1.0), batch,
            lambda b, _r: [float(s) for s in b.steps])
        assert stats.n_items == 8
        assert stats.duration > 0
        assert device.kernels_launched == 1


class TestStencilReduce:
    def test_heat_diffusion_converges(self):
        from repro.gpu.stencil_reduce import stencil_reduce
        device = SimtDevice(tesla_k40(), step_cost=1e-9)
        grid = [0.0] * 16 + [100.0] + [0.0] * 16

        def stencil(current, i):
            left = current[i - 1] if i > 0 else current[i]
            right = current[i + 1] if i < len(current) - 1 else current[i]
            return 0.25 * left + 0.5 * current[i] + 0.25 * right

        def spread(a, b):
            return max(a, b)

        final, peak, iterations = stencil_reduce(
            device, grid, stencil, spread,
            until=lambda reduced, _i: reduced < 20.0)
        assert peak < 20.0
        assert iterations > 1
        # total mass conserved by the symmetric stencil
        assert sum(final) == pytest.approx(100.0)

    def test_max_iterations_bound(self):
        from repro.gpu.stencil_reduce import stencil_reduce
        device = SimtDevice(tesla_k40(), step_cost=1e-9)
        _final, _red, iterations = stencil_reduce(
            device, [1.0, 2.0], lambda cur, i: cur[i], max,
            until=lambda *_: False, max_iterations=7)
        assert iterations == 7

    def test_empty_grid_rejected(self):
        from repro.gpu.stencil_reduce import stencil_reduce
        with pytest.raises(ValueError):
            stencil_reduce(SimtDevice(tesla_k40()), [], None, None, None)
