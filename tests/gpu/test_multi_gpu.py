"""Multi-GPU offloading: a farm of mapCUDA nodes (one per device), as the
paper describes ("wrapping it into ff_mapCUDA nodes, one for each GPGPU
available")."""

import pytest

from repro.cwc.network import FlatSimulator
from repro.ff import Farm, MasterWorkerEmitter, Pipeline, run
from repro.ff.graph import ToWorker
from repro.gpu.device import tesla_k40
from repro.gpu.map_cuda import MapCUDANode
from repro.gpu.simt import SimtDevice
from repro.sim.alignment import TrajectoryAligner
from repro.sim.task import make_tasks
from repro.sim.trajectory import assemble_trajectories


class _MultiDeviceEmitter(MasterWorkerEmitter):
    """Splits the stream of blocks across devices with block affinity."""

    def __init__(self, n_devices: int):
        super().__init__(name="gpu-dispatch")
        self.n_devices = n_devices
        self._device_of_block: dict[int, int] = {}
        self._next = 0

    def _route(self, block):
        # key on the block's first trajectory: the mapCUDA node feeds a
        # *new list* back after each quantum, so object identity would
        # not be stable
        key = block[0].task_id
        device = self._device_of_block.get(key)
        if device is None:
            device = self._next
            self._next = (self._next + 1) % self.n_devices
            self._device_of_block[key] = device
        return ToWorker(device, block)

    def is_complete(self, block):
        return all(task.done for task in block)

    def on_task(self, block):
        return self._route(block)

    def on_reschedule(self, block):
        return self._route(block)


class TestMultiGPU:
    def test_two_devices_share_the_blocks(self, neurospora_small):
        n, t_end, dt, seed = 6, 4.0, 1.0, 9
        devices = [SimtDevice(tesla_k40(), step_cost=1e-6)
                   for _ in range(2)]
        nodes = [MapCUDANode(device, name=f"mapCUDA{i}")
                 for i, device in enumerate(devices)]
        tasks = make_tasks(neurospora_small, n, t_end, quantum=2.0,
                           sample_every=dt, seed=seed)
        # two blocks of three simulations, one per device
        blocks = [tasks[:3], tasks[3:]]
        farm = Farm(nodes, emitter=_MultiDeviceEmitter(2),
                    collector=TrajectoryAligner(n), feedback=True)
        cuts = run(Pipeline([blocks, farm]), backend="sequential")

        # functional equality with direct simulation
        trajectories = assemble_trajectories(cuts, n)
        for task_id, trajectory in enumerate(trajectories):
            direct = FlatSimulator(neurospora_small,
                                   seed=seed + task_id).run(t_end, dt)
            assert trajectory.samples == direct.samples

        # both devices really executed kernels
        assert all(device.kernels_launched > 0 for device in devices)
        total_kernels = sum(d.kernels_launched for d in devices)
        assert total_kernels == 2 * 2  # 2 blocks x 2 quanta each

    def test_block_affinity_is_stable(self, neurospora_small):
        devices = [SimtDevice(tesla_k40(), step_cost=1e-6)
                   for _ in range(2)]
        nodes = [MapCUDANode(device, name=f"mapCUDA{i}")
                 for i, device in enumerate(devices)]
        tasks = make_tasks(neurospora_small, 2, 6.0, quantum=1.0,
                           sample_every=1.0, seed=1)
        blocks = [tasks[:1], tasks[1:]]
        farm = Farm(nodes, emitter=_MultiDeviceEmitter(2),
                    collector=TrajectoryAligner(2), feedback=True)
        run(Pipeline([blocks, farm]), backend="sequential")
        # six quanta per block, all on the block's own device
        assert devices[0].kernels_launched == 6
        assert devices[1].kernels_launched == 6
