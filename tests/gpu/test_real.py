"""The real-GPU bridge: import-safe everywhere, live only with CuPy."""

import numpy as np
import pytest

from repro.cwc.kernels import KernelUnavailable
from repro.gpu import RealGpuDevice, gpu_batch_simulator, real_gpu_available

needs_gpu = pytest.mark.skipif(not real_gpu_available(),
                               reason="cupy not installed or no device")


class TestWithoutDevice:
    def test_probe_is_bool(self):
        assert real_gpu_available() in (True, False)

    def test_device_raises_kernel_unavailable(self):
        if real_gpu_available():
            pytest.skip("a real device is present")
        with pytest.raises(KernelUnavailable, match="cupy"):
            RealGpuDevice()

    def test_simulator_raises_kernel_unavailable(self, neurospora_small):
        if real_gpu_available():
            pytest.skip("a real device is present")
        with pytest.raises(KernelUnavailable):
            gpu_batch_simulator(neurospora_small, 8, seed=0)


@needs_gpu
class TestWithDevice:
    def test_batched_launch_runs_a_quantum(self, neurospora_small):
        from repro.sim.task import BatchSimulationTask
        device = RealGpuDevice()
        sim = gpu_batch_simulator(neurospora_small, 32, seed=0)
        task = BatchSimulationTask(range(32), sim, t_end=5.0,
                                   quantum=2.5, sample_every=0.5)
        results, stats = device.launch_map_batched(
            lambda t: t.run_quantum(), task,
            lambda t, _r: t.steps_by_trajectory)
        assert len(results) == 32
        assert stats.n_items == 32
        assert stats.duration > 0
        assert device.kernels_launched == 1

    def test_gpu_trajectories_statistically_sane(self, neurospora_small):
        sim = gpu_batch_simulator(neurospora_small, 16, seed=1)
        sim.advance_to(np.full(16, 5.0))
        assert (sim.times >= 5.0 - 1e-9).all()
        assert (sim.counts >= 0).all()
