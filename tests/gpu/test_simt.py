"""The SIMT execution model: divergence, scheduling, re-balancing."""

import pytest

from repro.gpu.device import GPUSpec, tesla_k40
from repro.gpu.simt import SimtDevice, _schedule_warps, simulate_gpu_run
from repro.perfsim.workload import TrajectoryWorkload


def device(**overrides):
    spec = dict(name="test-gpu", warp_size=4, resident_warps=2,
                thread_slowdown=1.0, kernel_launch_overhead=0.0,
                unified_memory_cost_per_byte=0.0)
    spec.update(overrides)
    return SimtDevice(GPUSpec(**spec), step_cost=1.0)


class TestWarpScheduling:
    def test_single_warp(self):
        assert _schedule_warps([5.0], slots=4) == 5.0

    def test_parallel_warps(self):
        assert _schedule_warps([3.0, 4.0], slots=2) == 4.0

    def test_waves(self):
        # 4 equal warps on 2 slots: two waves
        assert _schedule_warps([2.0] * 4, slots=2) == 4.0

    def test_greedy_packing(self):
        # earliest-free-slot: [5] then [2,2,2] -> slot2 takes all the 2s
        assert _schedule_warps([5.0, 2.0, 2.0, 2.0], slots=2) == 6.0

    def test_empty(self):
        assert _schedule_warps([], slots=2) == 0.0


class TestKernelTiming:
    def test_uniform_threads_no_divergence(self):
        dev = device()
        stats = dev.launch_modeled([3.0, 3.0, 3.0, 3.0])
        assert stats.duration == 3.0
        assert stats.divergence_loss == 0.0
        assert stats.n_warps == 1

    def test_divergence_is_max_minus_mean(self):
        dev = device()
        stats = dev.launch_modeled([1.0, 1.0, 1.0, 5.0])
        assert stats.duration == 5.0  # lockstep: warp runs at the max
        assert stats.divergence_loss == pytest.approx(5.0 * 4 - 8.0)
        assert 0.0 < stats.divergence_ratio < 1.0

    def test_partial_warp_burns_lanes(self):
        dev = device()
        stats = dev.launch_modeled([2.0, 2.0])  # half a warp
        assert stats.duration == 2.0
        assert stats.divergence_loss == pytest.approx(0.0)

    def test_multiple_warps_and_waves(self):
        dev = device()
        # 3 warps of 4 threads on 2 slots
        stats = dev.launch_modeled([1.0] * 12)
        assert stats.n_warps == 3
        assert stats.duration == 2.0  # two waves

    def test_launch_overhead_added(self):
        dev = device(kernel_launch_overhead=10.0)
        assert dev.launch_modeled([1.0]).duration == 11.0

    def test_memory_traffic_added(self):
        dev = device(unified_memory_cost_per_byte=0.5)
        stats = dev.launch_modeled([1.0], bytes_moved=4.0)
        assert stats.duration == 3.0

    def test_slowdown_scales_thread_time(self):
        dev = device(thread_slowdown=4.0)
        assert dev.launch_modeled([2.0]).duration == 8.0

    def test_counters_accumulate(self):
        dev = device()
        dev.launch_modeled([1.0])
        dev.launch_modeled([1.0])
        assert dev.kernels_launched == 2
        assert dev.total_device_time == 2.0


class TestLaunchMap:
    def test_functional_execution(self):
        dev = device()
        results, stats = dev.launch_map(
            lambda x: x * x, [1, 2, 3, 4, 5],
            work_of=lambda item, result: float(item))
        assert results == [1, 4, 9, 16, 25]
        assert stats.n_items == 5
        assert stats.n_warps == 2


class TestGpuRun:
    def make_workload(self, n=64, quantum=1.0):
        return TrajectoryWorkload(
            n_trajectories=n, t_end=8.0, quantum=quantum, sample_every=0.5,
            oscillation_amplitude=0.5, seed=2)

    def test_rebalance_reduces_divergence(self):
        # needs more warps than warp slots: with few warps the kernel
        # makespan is the global max thread regardless of grouping
        wl = self.make_workload(n=1024)
        spec = tesla_k40()
        with_rb = simulate_gpu_run(wl, SimtDevice(spec), rebalance=True)
        without = simulate_gpu_run(wl, SimtDevice(spec), rebalance=False)
        assert with_rb.mean_divergence_ratio < without.mean_divergence_ratio
        assert with_rb.total_time < without.total_time

    def test_kernel_per_quantum(self):
        wl = self.make_workload(quantum=2.0)
        stats = simulate_gpu_run(wl, SimtDevice(tesla_k40()))
        assert stats.n_kernels == wl.n_quanta

    def test_more_sims_more_time(self):
        small = simulate_gpu_run(self.make_workload(n=512),
                                 SimtDevice(tesla_k40()))
        big = simulate_gpu_run(self.make_workload(n=2048),
                               SimtDevice(tesla_k40()))
        assert big.total_time > small.total_time

    def test_collection_barrier_counted(self):
        stats = simulate_gpu_run(self.make_workload(),
                                 SimtDevice(tesla_k40()))
        assert stats.collection_time > 0
        assert stats.collection_time < stats.total_time
