"""The dividing-cell-population model: dynamic compartment structure."""

import statistics

import pytest

from repro.cwc import CWCSimulator
from repro.cwc.matching import match_multiplicity
from repro.models.cell_population import cell_population_model, count_cells


class TestStructure:
    def test_initial_population(self):
        model = cell_population_model(n_cells=5, biomass0=3)
        assert count_cells(model.term) == 5
        assert model.measure(model.term) == (15,)

    def test_not_flat(self):
        assert not cell_population_model().is_flat()


class TestDynamics:
    def test_population_grows_when_division_dominates(self):
        model = cell_population_model(n_cells=3, division=1.0, death=0.01)
        simulator = CWCSimulator(model, seed=0)
        simulator.advance(8.0)
        assert count_cells(simulator.term) > 3

    def test_population_dies_out_when_death_dominates(self):
        model = cell_population_model(n_cells=3, growth=0.1,
                                      division=0.01, death=5.0)
        simulator = CWCSimulator(model, seed=1)
        simulator.advance(10.0)
        assert count_cells(simulator.term) == 0
        # an empty system is absorbed: no further reactions
        assert not simulator.step()

    def test_daughters_start_with_half_the_threshold(self):
        model = cell_population_model(n_cells=1, biomass0=5,
                                      growth=10.0, division=50.0,
                                      death=0.0, division_threshold=6)
        simulator = CWCSimulator(model, seed=3)
        for _ in range(200):
            if count_cells(simulator.term) >= 2:
                break
            simulator.step()
        assert count_cells(simulator.term) >= 2
        # total biomass is conserved by division itself (only growth adds)
        for cell in simulator.term.walk_compartments():
            assert cell.content.atoms.count("x") >= 0

    def test_growth_rate_scales_with_population(self):
        """The grow rule's multiplicity must equal the number of cells --
        the live check that matching stays correct as the tree changes."""
        model = cell_population_model(n_cells=4, death=0.0)
        simulator = CWCSimulator(model, seed=5)
        grow = next(r for r in model.rules if r.name == "grow")
        for _ in range(150):
            expected = count_cells(simulator.term)
            assert match_multiplicity(grow.lhs, simulator.term) == expected
            if not simulator.step():
                break

    def test_cache_correct_under_structural_churn(self):
        """Every division/death invalidates the propensity cache; cached
        and uncached runs must stay identical through heavy churn."""
        model = cell_population_model(n_cells=3, division=1.5, death=0.4)
        cached = CWCSimulator(model, seed=9).run(4.0, 1.0)
        uncached = CWCSimulator(model, seed=9,
                                cache_propensities=False).run(4.0, 1.0)
        assert cached.samples == uncached.samples

    def test_mean_population_follows_branching_intuition(self):
        """With division rate d and death rate k per cell, the population
        mean grows when the effective branching ratio exceeds 1."""
        model = cell_population_model(n_cells=4, growth=5.0,
                                      division=2.0, death=0.1)
        finals = []
        for seed in range(8):
            simulator = CWCSimulator(model, seed=seed)
            simulator.advance(3.0)
            finals.append(count_cells(simulator.term))
        assert statistics.mean(finals) > 4

    def test_pipeline_integration(self):
        """The dynamic model runs through the full farmed workflow."""
        from repro.pipeline import WorkflowConfig, run_workflow
        model = cell_population_model(n_cells=3)
        result = run_workflow(model, WorkflowConfig(
            n_simulations=3, t_end=4.0, sample_every=1.0, quantum=2.0,
            n_sim_workers=2, window_size=5, seed=0, engine="cwc"))
        assert result.n_windows >= 1
        assert len(result.cut_statistics()) == 5
