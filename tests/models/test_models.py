"""The bundled biological models."""

import pickle
import statistics

import pytest

from repro.cwc import CWCSimulator, FlatSimulator, integrate_ode
from repro.models import (
    NeurosporaParams,
    lotka_volterra_network,
    mm_enzyme_network,
    neurospora_cwc_model,
    neurospora_network,
    toggle_switch_network,
)


class TestNeurosporaNetwork:
    def test_structure(self):
        net = neurospora_network(omega=100)
        assert net.observables == ("M", "FC", "FN")
        assert len(net.reactions) == 6
        assert net.initial["M"] == 100

    def test_omega_scales_counts(self):
        small = neurospora_network(omega=10)
        large = neurospora_network(omega=1000)
        assert large.initial["M"] == 100 * small.initial["M"]

    def test_ssa_oscillates(self):
        net = neurospora_network(omega=50)
        result = FlatSimulator(net, seed=2).run(70.0, 0.5)
        m = result.column("M")
        # circadian oscillation: M swings over a wide range
        assert max(m) > 3 * (min(m) + 1)

    def test_network_is_picklable(self):
        net = neurospora_network(omega=50)
        clone = pickle.loads(pickle.dumps(net))
        a = FlatSimulator(net, seed=1).run(3.0, 1.0)
        b = FlatSimulator(clone, seed=1).run(3.0, 1.0)
        assert a.samples == b.samples

    def test_custom_params(self):
        params = NeurosporaParams(vs=2.0)
        net = neurospora_network(omega=10, params=params)
        assert net.name == "neurospora"


class TestNeurosporaCWC:
    def test_structure(self):
        model = neurospora_cwc_model(omega=20)
        assert not model.is_flat()
        assert model.observable_names == ("M", "FC", "FN")
        # cell compartment containing a nucleus compartment
        cell = model.term.compartments[0]
        assert cell.label == "cell"
        assert cell.content.compartments[0].label == "nucleus"

    def test_initial_observables(self):
        model = neurospora_cwc_model(omega=20)
        m, fc, fn = model.measure(model.term)
        assert (m, fc, fn) == (20, 10, 20)

    def test_dynamics_agree_with_flat_model(self):
        """The compartmentalised rendering must reproduce the flat
        model's mean behaviour (fast export makes them equivalent)."""
        omega, t_end = 15, 12.0
        flat_net = neurospora_network(omega=omega)
        flat = [FlatSimulator(flat_net, seed=s).run(t_end, t_end)
                .samples[-1][2] for s in range(12)]
        cwc_model = neurospora_cwc_model(omega=omega)
        cwc = [CWCSimulator(cwc_model, seed=100 + s).run(t_end, t_end)
               .samples[-1][2] for s in range(12)]
        mean_flat, mean_cwc = statistics.mean(flat), statistics.mean(cwc)
        spread = max(statistics.stdev(flat), statistics.stdev(cwc), 1.0)
        assert abs(mean_flat - mean_cwc) < 2.5 * spread

    def test_structure_is_stable(self):
        """Compartments are never created or destroyed by the dynamics."""
        model = neurospora_cwc_model(omega=10)
        simulator = CWCSimulator(model, seed=4)
        simulator.advance(5.0)
        assert len(simulator.term.compartments) == 1
        assert len(simulator.term.compartments[0].content.compartments) == 1


class TestLotkaVolterra:
    def test_structure(self, lotka_small):
        assert lotka_small.observables == ("prey", "pred")
        assert len(lotka_small.reactions) == 3

    def test_oscillation_or_extinction(self, lotka_small):
        simulator = FlatSimulator(lotka_small, seed=3)
        result = simulator.run(20.0, 0.5)
        prey = result.column("prey")
        # either extinct (absorbed) or still oscillating
        assert prey[-1] == 0 or max(prey) > 1.5 * min(p for p in prey if p > 0)

    def test_trajectory_cost_is_heavily_unbalanced(self):
        """The property the paper's load balancing addresses."""
        net = lotka_volterra_network(prey0=50, predator0=50,
                                     birth=1.0, predation=0.02, death=1.0)
        steps = []
        for seed in range(15):
            simulator = FlatSimulator(net, seed=seed)
            simulator.advance(30.0)
            steps.append(simulator.steps)
        assert max(steps) > 2 * min(steps)


class TestToggleSwitch:
    def test_structure(self, toggle_small):
        assert toggle_small.observables == ("U", "V")

    def test_bistability(self):
        """Trajectories commit to one of two expression states."""
        net = toggle_switch_network(omega=30)
        finals = []
        for seed in range(14):
            result = FlatSimulator(net, seed=seed).run(40.0, 40.0)
            u, v = result.samples[-1]
            finals.append(u > v)
        assert any(finals) and not all(finals)  # both attractors visited

    def test_states_are_asymmetric(self):
        net = toggle_switch_network(omega=30)
        result = FlatSimulator(net, seed=0).run(40.0, 40.0)
        u, v = result.samples[-1]
        assert abs(u - v) > 10  # committed, not mixed


class TestEnzyme:
    def test_conservation_laws(self, enzyme_small):
        simulator = FlatSimulator(enzyme_small, seed=1)
        result = simulator.run(50.0, 5.0)
        for e, s, es, p in result.samples:
            assert e + es == 10        # enzyme conserved
            assert s + es + p == 50    # substrate mass conserved

    def test_goes_to_completion(self, enzyme_small):
        # the last few substrate molecules react slowly (propensity ~ E*S)
        result = FlatSimulator(enzyme_small, seed=2).run(2000.0, 2000.0)
        e, s, es, p = result.samples[-1]
        assert p == 50 and s == 0 and es == 0

    def test_matches_ode_mean(self):
        net = mm_enzyme_network(enzyme0=50, substrate0=500)
        ode = integrate_ode(net, t_end=5.0, sample_every=5.0)
        p_ode = ode.column("P")[-1]
        p_ssa = statistics.mean(
            FlatSimulator(net, seed=s).run(5.0, 5.0).samples[-1][3]
            for s in range(10))
        assert p_ssa == pytest.approx(p_ode, rel=0.15)
