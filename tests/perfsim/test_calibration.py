"""Cost-model calibration against the real stack."""

import pytest

from repro.perfsim.calibration import CalibrationReport, calibrate_cost_model


class TestCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.models import neurospora_network
        return calibrate_cost_model(neurospora_network(omega=50),
                                    t_probe=0.5)

    def test_measured_values_positive(self, report):
        assert report.step_seconds > 0
        assert report.align_seconds_per_sample > 0
        assert report.stat_seconds_per_trajectory > 0

    def test_ratios_are_plausible(self, report):
        """One SSA step is the expensive unit; an alignment insert and a
        per-trajectory stats pass are each cheaper."""
        assert report.align_seconds_per_sample < report.step_seconds
        assert report.stat_seconds_per_trajectory < 5 * report.step_seconds

    def test_cost_model_normalisation(self, report):
        model = report.cost_model(reference_step=1.0e-6)
        assert model.step_cost == 1.0e-6
        # ratios preserved under normalisation
        assert model.align_cost_per_sample / model.step_cost == \
            pytest.approx(report.align_seconds_per_sample
                          / report.step_seconds, rel=1e-9)

    def test_calibrated_model_runs_the_des(self, report):
        from repro.perfsim import TrajectoryWorkload
        from repro.perfsim.runner import simulate_workflow
        workload = TrajectoryWorkload(
            n_trajectories=16, t_end=4.0, quantum=1.0, sample_every=0.5)
        result = simulate_workflow(workload, cost=report.cost_model(),
                                   n_sim_workers=4)
        assert result.makespan > 0
