"""The discrete-event simulation kernel."""

import pytest

from repro.perfsim.des import Environment, Event, Resource, Store


class TestTimeouts:
    def test_timeouts_fire_in_order(self):
        env = Environment()
        log = []

        def proc(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(3.0, "late"))
        env.process(proc(1.0, "early"))
        env.run()
        assert log == [(1.0, "early"), (3.0, "late")]

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        ticks = []

        def proc():
            for _ in range(3):
                yield env.timeout(2.0)
                ticks.append(env.now)

        env.process(proc())
        env.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_same_time_fifo(self):
        env = Environment()
        log = []

        def proc(tag):
            yield env.timeout(1.0)
            log.append(tag)

        env.process(proc("first"))
        env.process(proc("second"))
        env.run()
        assert log == ["first", "second"]


class TestProcesses:
    def test_return_value_via_until(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return 42

        result = env.run(until=env.process(proc()))
        assert result == 42

    def test_process_waits_for_process(self):
        env = Environment()

        def child():
            yield env.timeout(5.0)
            return "done"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        assert env.run(until=env.process(parent())) == (5.0, "done")

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()


class TestStore:
    def test_fifo(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(7.0)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(7.0, "x")]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")  # blocks until the consumer pops
            log.append(("put-b", env.now))

        def consumer():
            yield env.timeout(10.0)
            assert (yield store.get()) == "a"

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("put-a", 0.0), ("put-b", 10.0)]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        resource = Resource(env, slots=1)
        spans = []

        def proc(tag):
            yield resource.acquire()
            start = env.now
            yield env.timeout(2.0)
            resource.release()
            spans.append((tag, start, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_parallel_slots(self):
        env = Environment()
        resource = Resource(env, slots=2)
        ends = []

        def proc():
            yield resource.acquire()
            yield env.timeout(3.0)
            resource.release()
            ends.append(env.now)

        for _ in range(4):
            env.process(proc())
        env.run()
        assert ends == [3.0, 3.0, 6.0, 6.0]

    def test_release_without_acquire(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            Resource(env, slots=1).release()


class TestDeterminism:
    def test_identical_runs(self):
        def build_and_run():
            env = Environment()
            store = Store(env, capacity=2)
            trace = []

            def producer():
                for i in range(5):
                    yield env.timeout(0.5)
                    yield store.put(i)

            def consumer():
                for _ in range(5):
                    item = yield store.get()
                    yield env.timeout(0.8)
                    trace.append((round(env.now, 6), item))

            env.process(producer())
            env.process(consumer())
            env.run()
            return trace

        assert build_and_run() == build_and_run()
