"""Property-based checks on the performance-model building blocks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.simt import _schedule_warps
from repro.perfsim.des import Environment, Event, Store
from repro.perfsim.workload import TrajectoryWorkload

durations = st.lists(st.floats(min_value=0.01, max_value=100.0),
                     min_size=1, max_size=40)


class TestWarpSchedulingBounds:
    @given(durations, st.integers(1, 16))
    @settings(max_examples=80)
    def test_makespan_bounds(self, times, slots):
        """Greedy list scheduling: max(longest job, total/slots) <=
        makespan <= total/slots + longest job (Graham's bound)."""
        makespan = _schedule_warps(times, slots)
        total = sum(times)
        longest = max(times)
        lower = max(longest, total / slots)
        assert makespan >= lower - 1e-9
        assert makespan <= total / min(slots, len(times)) + longest + 1e-9

    @given(durations)
    @settings(max_examples=40)
    def test_single_slot_is_serial(self, times):
        assert _schedule_warps(times, 1) == pytest.approx(sum(times))

    @given(durations)
    @settings(max_examples=40)
    def test_infinite_slots_is_max(self, times):
        assert _schedule_warps(times, 10 ** 6) == pytest.approx(max(times))


class TestWorkloadPartitionProperty:
    @given(st.integers(1, 60),   # t_end in sample units
           st.integers(1, 25),   # quantum in half-sample units
           st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=80)
    def test_samples_partition_grid(self, t_units, q_halves, sample):
        t_end = t_units * sample
        quantum = q_halves * sample / 2.0
        workload = TrajectoryWorkload(
            n_trajectories=1, t_end=t_end, quantum=quantum,
            sample_every=sample)
        total = sum(workload.samples_in_quantum(q)
                    for q in range(workload.n_quanta))
        assert total == workload.n_grid_points

    @given(st.integers(1, 40), st.integers(1, 10))
    @settings(max_examples=40)
    def test_quanta_cover_t_end(self, t_units, q_units):
        t_end, quantum = float(t_units), float(q_units)
        workload = TrajectoryWorkload(
            n_trajectories=1, t_end=t_end, quantum=quantum,
            sample_every=1.0)
        last_start, last_end = workload.quantum_span(workload.n_quanta - 1)
        assert last_end == pytest.approx(t_end)
        assert last_start < t_end


class TestDesGuards:
    def test_event_double_succeed_rejected(self):
        env = Environment()
        event = Event(env)
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_max_events_livelock_guard(self):
        env = Environment()

        def spinner():
            while True:
                yield env.timeout(0.0)

        env.process(spinner())
        with pytest.raises(RuntimeError, match="did not settle"):
            env.run(max_events=1000)

    def test_until_never_fires(self):
        env = Environment()
        never = Event(env)

        def quick():
            yield env.timeout(1.0)

        env.process(quick())
        with pytest.raises(RuntimeError, match="never fired"):
            env.run(until=never)

    def test_store_many_waiters_fifo(self):
        env = Environment()
        store = Store(env)
        order = []

        def consumer(tag):
            item = yield store.get()
            order.append((tag, item))

        def producer():
            yield env.timeout(1.0)
            for i in range(3):
                yield store.put(i)

        for tag in "abc":
            env.process(consumer(tag))
        env.process(producer())
        env.run()
        assert order == [("a", 0), ("b", 1), ("c", 2)]
