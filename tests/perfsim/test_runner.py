"""The DES workflow models: structural invariants and qualitative
behaviour (the quantitative figure shapes live in benchmarks/)."""

import pytest

from repro.perfsim import (
    CostModel,
    TrajectoryWorkload,
    cluster,
    ec2_virtual_cluster,
    heterogeneous_96,
    intel32,
)
from repro.perfsim.platform import HostSpec
from repro.perfsim.runner import (
    sequential_time,
    simulate_distributed,
    simulate_workflow,
    speedup_curve,
)


def workload(n=32, **overrides):
    base = dict(n_trajectories=n, t_end=8.0, quantum=1.0,
                sample_every=0.5, seed=1)
    base.update(overrides)
    return TrajectoryWorkload(**base)


class TestSingleHost:
    def test_counts(self):
        wl = workload()
        result = simulate_workflow(wl, n_sim_workers=4, window_size=5)
        assert result.n_trajectories == 32
        assert result.n_quanta == 8
        assert result.n_cuts == wl.n_grid_points
        assert result.n_windows == 4  # ceil(17/5)
        assert len(result.worker_busy) == 4

    def test_makespan_positive_and_bounded(self):
        wl = workload()
        result = simulate_workflow(wl, n_sim_workers=4)
        lower = wl.total_steps() * CostModel().step_cost / 4
        assert result.makespan >= lower * 0.99
        assert result.makespan < lower * 10

    def test_more_workers_never_slower(self):
        wl = workload()
        times = [simulate_workflow(wl, n_sim_workers=w).makespan
                 for w in (1, 2, 4, 8)]
        for slow, fast in zip(times, times[1:]):
            assert fast <= slow * 1.01

    def test_deterministic(self):
        wl = workload()
        a = simulate_workflow(wl, n_sim_workers=4).makespan
        b = simulate_workflow(wl, n_sim_workers=4).makespan
        assert a == b

    def test_utilisation_in_range(self):
        result = simulate_workflow(workload(), n_sim_workers=4)
        assert 0.3 < result.worker_utilisation <= 1.0
        assert result.load_imbalance >= 1.0

    def test_stat_engine_bottleneck_direction(self):
        """With an artificially expensive analysis, adding stat engines
        must help; with cheap analysis it must not matter."""
        wl = workload(n=64)
        heavy = CostModel().with_(stat_cut_quad=5e-6)
        one = simulate_workflow(wl, cost=heavy, n_sim_workers=8,
                                n_stat_workers=1, window_size=2).makespan
        four = simulate_workflow(wl, cost=heavy, n_sim_workers=8,
                                 n_stat_workers=4, window_size=2).makespan
        assert four < one * 0.8
        light = CostModel()
        one_l = simulate_workflow(wl, cost=light, n_sim_workers=8,
                                  n_stat_workers=1, window_size=2).makespan
        four_l = simulate_workflow(wl, cost=light, n_sim_workers=8,
                                   n_stat_workers=4, window_size=2).makespan
        assert four_l == pytest.approx(one_l, rel=0.05)

    def test_fewer_cores_than_workers_rejected_nowhere(self):
        # services contend with workers on a tiny host: still completes
        tiny = HostSpec("tiny", cores=2)
        result = simulate_workflow(workload(n=8), n_sim_workers=2, host=tiny)
        assert result.makespan > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_workflow(workload(), n_sim_workers=0)


class TestSequentialBaseline:
    def test_sequential_slower_than_parallel(self):
        wl = workload()
        seq = sequential_time(wl)
        par = simulate_workflow(wl, n_sim_workers=8).makespan
        assert seq > par * 2

    def test_speedup_curve_monotone(self):
        wl = workload(n=64)
        curve = speedup_curve(wl, [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.5 and curve[4] > curve[2] and curve[8] > curve[4]

    def test_speedup_sequential_baseline(self):
        wl = workload(n=64)
        curve = speedup_curve(wl, [4], baseline="sequential")
        assert curve[4] > 2.0

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            speedup_curve(workload(), [1], baseline="magic")


class TestDistributed:
    def test_counts_and_workers(self):
        wl = workload(n=24)
        plat = cluster(3, cores_per_host=4)
        result = simulate_distributed(wl, plat, workers_per_host=2)
        assert len(result.worker_busy) == 6
        assert result.n_cuts == wl.n_grid_points

    def test_more_hosts_faster(self):
        wl = workload(n=64)
        times = []
        for hosts in (1, 2, 4):
            plat = cluster(hosts, cores_per_host=4)
            times.append(simulate_distributed(
                wl, plat, workers_per_host=4).makespan)
        assert times[1] < times[0] and times[2] < times[1]

    def test_network_cost_hurts(self):
        """The same aggregate cores spread over a network are slower
        than on one shared-memory host."""
        wl = workload(n=64)
        one_host = simulate_distributed(
            wl, cluster(1, cores_per_host=8), workers_per_host=8).makespan
        four_hosts = simulate_distributed(
            wl, cluster(4, cores_per_host=2), workers_per_host=2).makespan
        assert four_hosts >= one_host * 0.99

    def test_dynamic_beats_static_on_heterogeneous(self):
        wl = workload(n=96, t_end=8.0)
        plat = heterogeneous_96()
        workers = [16, 8, 8] + [2] * 8
        dynamic = simulate_distributed(wl, plat, workers_per_host=workers,
                                       scheduling="dynamic").makespan
        static = simulate_distributed(wl, plat, workers_per_host=workers,
                                      scheduling="static").makespan
        assert dynamic < static

    def test_deterministic(self):
        wl = workload(n=24)
        plat = ec2_virtual_cluster(n_vms=2)
        a = simulate_distributed(wl, plat, workers_per_host=4).makespan
        b = simulate_distributed(wl, plat, workers_per_host=4).makespan
        assert a == b

    def test_validation(self):
        wl = workload()
        plat = cluster(2, cores_per_host=4)
        with pytest.raises(ValueError):
            simulate_distributed(wl, plat, workers_per_host=[2])
        with pytest.raises(ValueError):
            simulate_distributed(wl, plat, workers_per_host=8)  # > cores
        with pytest.raises(ValueError):
            simulate_distributed(wl, plat, workers_per_host=2,
                                 scheduling="magic")


class TestPlatforms:
    def test_presets_shape(self):
        assert intel32().total_cores == 32
        assert cluster(4).n_hosts == 4
        assert ec2_virtual_cluster().total_cores == 32
        hetero = heterogeneous_96()
        assert hetero.total_cores == 96
        assert hetero.hosts[0].name == "nehalem"

    def test_channel_to_master_override(self):
        hetero = heterogeneous_96()
        assert hetero.channel_to_master(1).name == "gbe"
        assert hetero.channel_to_master(5).name == "wan"

    def test_transfer_time(self):
        from repro.perfsim.platform import INFINIBAND_IPOIB
        cost = INFINIBAND_IPOIB.transfer_time(9000)
        assert cost == pytest.approx(18e-6 + 9000 / 900e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster(0)
        with pytest.raises(ValueError):
            HostSpec("h", cores=0)


class TestCostModel:
    def test_with_override(self):
        base = CostModel()
        tuned = base.with_(step_cost=9.0)
        assert tuned.step_cost == 9.0
        assert tuned.dispatch_cost == base.dispatch_cost
        assert base.step_cost != 9.0

    def test_stat_cost_growth_is_superlinear(self):
        cost = CostModel()
        ratio = cost.stat_cost_per_cut(1024) / cost.stat_cost_per_cut(512)
        assert ratio > 2.5  # strictly worse than linear doubling
