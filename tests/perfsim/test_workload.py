"""Workload models and calibration."""

import pytest

from repro.perfsim.workload import TrajectoryWorkload, measure_workload


def workload(**overrides):
    base = dict(n_trajectories=4, t_end=10.0, quantum=1.0,
                sample_every=0.5, seed=0)
    base.update(overrides)
    return TrajectoryWorkload(**base)


class TestGridMath:
    def test_quanta_count(self):
        assert workload(t_end=10.0, quantum=1.0).n_quanta == 10
        assert workload(t_end=10.0, quantum=3.0).n_quanta == 4
        assert workload(t_end=10.0, quantum=20.0).n_quanta == 1

    def test_grid_points(self):
        assert workload(t_end=10.0, sample_every=0.5).n_grid_points == 21

    def test_samples_partition_the_grid(self):
        wl = workload(t_end=10.0, quantum=1.7, sample_every=0.5)
        total = sum(wl.samples_in_quantum(q) for q in range(wl.n_quanta))
        assert total == wl.n_grid_points

    def test_first_quantum_includes_t0(self):
        wl = workload(quantum=1.0, sample_every=0.5)
        assert wl.samples_in_quantum(0) == 3  # t = 0, 0.5, 1.0

    def test_quantum_span_clamped(self):
        wl = workload(t_end=10.0, quantum=3.0)
        assert wl.quantum_span(3) == (9.0, 10.0)


class TestCostTraces:
    def test_deterministic(self):
        a, b = workload(seed=3), workload(seed=3)
        assert a.quantum_steps(2, 5) == b.quantum_steps(2, 5)

    def test_seed_changes_trace(self):
        assert workload(seed=1).quantum_steps(0, 0) != \
            workload(seed=2).quantum_steps(0, 0)

    def test_mean_rate_respected(self):
        wl = workload(n_trajectories=20, steps_per_hour=1000.0,
                      jitter_cv=0.0, poisson_noise=False)
        total = wl.total_steps()
        expected = 20 * 10.0 * 1000.0
        assert total == pytest.approx(expected, rel=0.15)

    def test_oscillation_spreads_trajectories(self):
        wl = workload(n_trajectories=30, oscillation_amplitude=0.5,
                      jitter_cv=0.0, poisson_noise=False)
        costs = [wl.quantum_steps(i, 0) for i in range(30)]
        assert max(costs) > 1.3 * min(costs)

    def test_no_oscillation_no_spread(self):
        wl = workload(n_trajectories=10, oscillation_amplitude=0.0,
                      jitter_cv=0.0, poisson_noise=False)
        costs = {round(wl.quantum_steps(i, 0), 9) for i in range(10)}
        assert len(costs) == 1

    def test_steps_positive(self):
        wl = workload(n_trajectories=10)
        for i in range(10):
            for q in range(wl.n_quanta):
                assert wl.quantum_steps(i, q) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            workload(n_trajectories=0)
        with pytest.raises(ValueError):
            workload(oscillation_amplitude=1.5)
        with pytest.raises(ValueError):
            workload(quantum=0)


class TestMessageSizes:
    def test_result_size_tracks_samples(self):
        wl = workload(quantum=2.0, sample_every=0.5)
        big = wl.result_message_size(1)
        tiny = TrajectoryWorkload(
            n_trajectories=1, t_end=10.0, quantum=0.5, sample_every=0.5,
            seed=0).result_message_size(1)
        assert big > tiny


class TestCalibration:
    def test_measure_against_real_engine(self, neurospora_small):
        fitted = measure_workload(neurospora_small, t_end=20.0, quantum=1.0,
                                  sample_every=0.5, n_probe=2, seed=0)
        assert fitted.steps_per_hour > 10
        assert 0.0 <= fitted.oscillation_amplitude < 0.95
        assert 0.0 <= fitted.jitter_cv <= 0.5
        assert fitted.n_observables == 3

    def test_fitted_total_matches_measured_scale(self, neurospora_small):
        from repro.cwc.network import FlatSimulator
        simulator = FlatSimulator(neurospora_small, seed=0)
        simulator.advance(20.0)
        real_rate = simulator.steps / 20.0
        fitted = measure_workload(neurospora_small, t_end=20.0, quantum=1.0,
                                  sample_every=0.5, n_probe=2, seed=0)
        assert fitted.steps_per_hour == pytest.approx(real_rate, rel=0.5)
