"""The adaptive feedback loop: policies, decision application, window-set
determinism across backends, and variance-proportional sweep allocation."""

import math

import pytest

from repro.analysis.engines import WindowStatistics
from repro.analysis.stats import CutStatistics, OnlineStats
from repro.ff.trace import Tracer
from repro.pipeline.adaptive import (AdaptiveController,
                                     ConvergenceStopPolicy,
                                     LaggardRepriorityPolicy, ParameterPoint,
                                     Repriority, StopRun,
                                     make_adaptive_controller,
                                     run_adaptive_sweep, task_lag_key)
from repro.pipeline.builder import run_workflow
from repro.pipeline.config import WorkflowConfig
from repro.pipeline.steering import ProgressEvent

ADAPTIVE = dict(n_simulations=8, t_end=80.0, sample_every=0.5, quantum=2.0,
                window_size=10, seed=3, trace=True,
                adaptive_ci=0.05, adaptive_min_windows=4)


def _cut(grid_index, n, mean, variance):
    return CutStatistics(grid_index=grid_index, time=0.5 * grid_index,
                         n_trajectories=n, mean=(mean,),
                         variance=(variance,), minimum=(mean,),
                         maximum=(mean,), median=(mean,))


def _event(index, cuts, windows_seen=None):
    stats = WindowStatistics(window_index=index, start_time=0.0,
                             end_time=1.0, cuts=cuts)
    return ProgressEvent(window_index=index, start_time=0.0, end_time=1.0,
                         statistics=stats,
                         windows_seen=windows_seen or index + 1)


class TestConvergenceStopPolicy:
    def test_pools_moments_and_stops_when_tight(self):
        policy = ConvergenceStopPolicy(0.05, min_windows=1)
        # high-variance first window: no stop
        assert list(policy.on_window(_event(
            0, [_cut(g, 10, 100.0, 1e6) for g in range(5)]))) == []
        # many tight cuts: pooled hw collapses below 5% of the mean
        decisions = list(policy.on_window(_event(
            1, [_cut(g, 400, 100.0, 1.0) for g in range(5, 1000)])))
        assert len(decisions) == 1
        assert isinstance(decisions[0], StopRun)
        assert decisions[0].window_index == 1
        assert policy.converged()

    def test_dedupes_overlapping_cuts_by_grid_index(self):
        policy = ConvergenceStopPolicy(0.05)
        cuts = [_cut(g, 4, 10.0, 2.0) for g in range(6)]
        policy.on_window(_event(0, cuts))
        n_before = policy.pooled[0].n
        # the overlapping window shares cuts 2..5 and adds 6..7
        policy.on_window(_event(
            1, cuts[2:] + [_cut(6, 4, 10.0, 2.0), _cut(7, 4, 10.0, 2.0)]))
        assert policy.pooled[0].n == n_before + 2 * 4

    def test_min_windows_guards_early_stop(self):
        policy = ConvergenceStopPolicy(0.5, min_windows=3)
        tight = [_cut(g, 500, 50.0, 0.1) for g in range(30)]
        assert list(policy.on_window(_event(0, tight))) == []
        assert list(policy.on_window(_event(1, tight[:1]))) == []
        assert len(list(policy.on_window(_event(2, tight[:1])))) == 1

    def test_species_subset(self):
        policy = ConvergenceStopPolicy(0.05, species=(0,), min_windows=1)
        cuts = [CutStatistics(grid_index=g, time=0.0, n_trajectories=200,
                              mean=(100.0, 1e-6),
                              variance=(0.5, 1e6),
                              minimum=(0.0, 0.0), maximum=(0.0, 0.0),
                              median=(0.0, 0.0))
                for g in range(200)]
        # species 1 is wildly unconverged, but only species 0 is tracked
        assert len(list(policy.on_window(_event(0, cuts)))) == 1

    def test_absolute_threshold(self):
        policy = ConvergenceStopPolicy(1e-4, relative=False, min_windows=1)
        cuts = [_cut(g, 100, 0.5, 2.0) for g in range(50)]
        assert list(policy.on_window(_event(0, cuts))) == []
        assert not policy.converged()

    def test_carry_continues_pooling(self):
        first = ConvergenceStopPolicy(0.05)
        first.on_window(_event(0, [_cut(g, 8, 10.0, 4.0)
                                   for g in range(10)]))
        resumed = ConvergenceStopPolicy(0.05, carry=first.pooled)
        assert resumed.pooled[0].n == first.pooled[0].n
        resumed.on_window(_event(0, [_cut(g, 8, 10.0, 4.0)
                                     for g in range(10)]))
        assert resumed.pooled[0].n == 2 * first.pooled[0].n
        # the donor's accumulators are not aliased
        assert first.pooled[0].n == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceStopPolicy(0.0)
        with pytest.raises(ValueError):
            ConvergenceStopPolicy(0.1, confidence=1.0)
        with pytest.raises(ValueError):
            ConvergenceStopPolicy(0.1, min_windows=0)


class TestLaggardRepriorityPolicy:
    def test_emits_every_nth_window(self):
        policy = LaggardRepriorityPolicy(every=2)
        emitted = [len(list(policy.on_window(_event(i, []))))
                   for i in range(6)]
        assert emitted == [0, 1, 0, 1, 0, 1]

    def test_key_orders_laggards_first(self):
        class T:
            def __init__(self, time):
                self.time = time
        times = [5.0, 1.0, 3.0]
        assert sorted(times, key=lambda t: t) == [
            t.time for t in sorted((T(x) for x in times), key=task_lag_key)]


class _FakeScheduler:
    def __init__(self, moved=3):
        self.moved = moved
        self.keys = []

    def repriority(self, key):
        self.keys.append(key)
        return self.moved


class TestAdaptiveController:
    def test_stop_decision_sets_window_and_counters(self):
        controller = AdaptiveController(
            [ConvergenceStopPolicy(0.05, min_windows=1)])
        tight = [_cut(g, 400, 100.0, 1.0) for g in range(500)]
        assert controller._notify(_event(0, tight).statistics) is True
        assert controller.stop_window == 0
        assert controller.stop_requested
        assert ("adapt.stops", 1) in controller.drain_counters()
        assert controller.drain_counters() == []  # drained

    def test_truncates_windows_after_stop(self):
        controller = AdaptiveController(
            [ConvergenceStopPolicy(0.05, min_windows=1)])
        tight = [_cut(g, 400, 100.0, 1.0) for g in range(500)]
        assert controller._notify(_event(0, tight).statistics) is True
        # straggler windows produced by in-flight quanta are vetoed
        assert controller._notify(_event(1, tight[:1]).statistics) is False
        assert controller._notify(_event(7, []).statistics) is False
        assert controller.windows_seen == 1

    def test_repriority_decision_reaches_scheduler(self):
        controller = AdaptiveController([LaggardRepriorityPolicy()])
        scheduler = _FakeScheduler(moved=5)
        controller.attach_scheduler(scheduler)
        controller._notify(_event(0, []).statistics)
        assert len(scheduler.keys) == 1
        assert ("adapt.reprioritized", 5) in controller.drain_counters()

    def test_repriority_without_scheduler_is_noop(self):
        controller = AdaptiveController([LaggardRepriorityPolicy()])
        controller._notify(_event(0, []).statistics)
        assert controller.drain_counters() == []

    def test_unknown_decision_raises(self):
        class Weird(LaggardRepriorityPolicy):
            def on_window(self, event):
                return ["nonsense"]
        controller = AdaptiveController([Weird()])
        with pytest.raises(TypeError):
            controller._notify(_event(0, []).statistics)

    def test_reset_clears_run_state(self):
        controller = AdaptiveController(
            [ConvergenceStopPolicy(0.05, min_windows=1)])
        tight = [_cut(g, 400, 100.0, 1.0) for g in range(500)]
        controller._notify(_event(0, tight).statistics)
        controller.reset()
        assert controller.stop_window is None
        assert not controller.stop_requested
        assert controller.windows_seen == 0
        assert controller.policies[0].pooled == {}

    def test_factory_from_config(self):
        cfg = WorkflowConfig(adaptive_ci=0.1, adaptive_repriority=True)
        controller = make_adaptive_controller(cfg)
        kinds = {type(p) for p in controller.policies}
        assert kinds == {ConvergenceStopPolicy, LaggardRepriorityPolicy}
        assert make_adaptive_controller(WorkflowConfig()) is None


class TestConvergenceStopEndToEnd:
    def test_saves_quanta_and_reports_counters(self, neurospora_small):
        cfg = WorkflowConfig(**ADAPTIVE, backend="sequential")
        controller = make_adaptive_controller(cfg)
        result = run_workflow(neurospora_small, cfg, controller=controller)
        counters = result.trace_report.counters
        full = cfg.n_simulations * cfg.n_quanta
        assert controller.stop_window is not None
        assert counters["sim.quanta_dispatched"] < full
        assert counters["adapt.stops"] == 1
        assert counters["sim.tasks_retired"] == cfg.n_simulations
        assert counters.get("sim.tasks_completed", 0) == 0
        # the emitted set is the deterministic prefix 0..stop_window
        assert [w.window_index for w in result.windows] == list(
            range(controller.stop_window + 1))

    def test_auto_controller_from_config(self, neurospora_small):
        """run_workflow builds the controller itself from the adaptive
        knobs when none is passed."""
        cfg = WorkflowConfig(**ADAPTIVE, backend="sequential")
        result = run_workflow(neurospora_small, cfg)
        counters = result.trace_report.counters
        assert counters["adapt.stops"] == 1
        assert counters["sim.quanta_dispatched"] < (
            cfg.n_simulations * cfg.n_quanta)


@pytest.mark.parametrize("backend",
                         ("sequential", "threads", "processes", "cluster"))
class TestCrossBackendDeterminism:
    """Same seed + same threshold must retire a bit-identical window set
    on every backend, regardless of how many quanta were in flight when
    the stop decision landed."""

    REFERENCE = {}

    def _signature(self, result):
        return [(w.window_index, w.start_time, w.end_time,
                 tuple((c.grid_index, c.time, c.mean, c.variance)
                       for c in w.cuts),
                 w.window_mean, w.ci_half_width)
                for w in result.windows]

    def test_identical_window_set(self, neurospora_small, backend):
        cfg = WorkflowConfig(**ADAPTIVE, backend=backend)
        controller = make_adaptive_controller(cfg)
        result = run_workflow(neurospora_small, cfg, controller=controller)
        assert controller.stop_window is not None
        signature = (controller.stop_window, self._signature(result))
        reference = self.REFERENCE.setdefault("signature", signature)
        assert signature == reference


class TestRepriorityEndToEnd:
    def test_backlog_reordering_preserves_results(self, neurospora_small,
                                                  monkeypatch):
        # whether a re-key actually *moves* backlog entries depends on
        # worker timing (the heap may already be laggards-first), so the
        # deterministic claims are: the policy re-keys the scheduler on
        # every analysed window, and the results never change.  Actual
        # reordering is covered by tests/sim/test_adaptive_scheduler.py.
        from repro.sim.scheduler import SimTaskEmitter
        rekeys = []
        orig = SimTaskEmitter.repriority

        def spy(self, key):
            moved = orig(self, key)
            rekeys.append(moved)
            return moved

        monkeypatch.setattr(SimTaskEmitter, "repriority", spy)
        base = dict(n_simulations=16, t_end=60.0, sample_every=0.5,
                    quantum=2.0, window_size=10, seed=3)
        plain = run_workflow(neurospora_small, WorkflowConfig(**base))
        cfg = WorkflowConfig(**base, adaptive_repriority=True, trace=True)
        adaptive = run_workflow(neurospora_small, cfg)
        extract = lambda r: [(w.window_index,
                              tuple(c.mean for c in w.cuts))
                             for w in r.windows]
        assert extract(plain) == extract(adaptive)
        assert rekeys, "the controller never re-keyed the scheduler"
        counters = adaptive.trace_report.counters
        assert counters.get("adapt.reprioritized", 0) == sum(rekeys)


class TestAdaptiveSweep:
    def _points(self, neurospora_small):
        from repro.models import neurospora_network
        return [ParameterPoint("small", neurospora_small),
                ParameterPoint("large", neurospora_network(omega=40))]

    def test_extra_budget_goes_to_unconverged_points(self, neurospora_small):
        cfg = WorkflowConfig(n_simulations=4, t_end=40.0, sample_every=0.5,
                             quantum=2.0, window_size=10, seed=3,
                             adaptive_ci=0.04, adaptive_min_windows=3)
        tracer = Tracer()
        sweep = run_adaptive_sweep(self._points(neurospora_small), cfg,
                                   extra_budget=6, tracer=tracer)
        assert sum(sweep.extra_allocated.values()) <= 6
        assert sweep.total_quanta > 0
        granted = tracer.report().counters.get("adapt.extra_tasks", 0)
        assert granted == sum(sweep.extra_allocated.values())
        for outcome in sweep.points:
            assert outcome.n_trajectories >= cfg.n_simulations
            assert outcome.pooled  # pooled stats survive the phases
            hw = outcome.half_widths
            assert all(not math.isnan(v) for v in hw.values())
            if outcome.point.name in sweep.extra_allocated:
                assert outcome.extra_granted > 0

    def test_converged_points_get_nothing(self, neurospora_small):
        # a sloppy threshold converges both points in the probe phase
        cfg = WorkflowConfig(n_simulations=4, t_end=40.0, sample_every=0.5,
                             quantum=2.0, window_size=10, seed=3,
                             adaptive_ci=0.5, adaptive_min_windows=2)
        sweep = run_adaptive_sweep(self._points(neurospora_small), cfg,
                                   extra_budget=10)
        assert sweep.extra_allocated == {}
        assert all(p.converged for p in sweep.points)
        assert all(p.extra_granted == 0 for p in sweep.points)

    def test_requires_threshold(self, neurospora_small):
        cfg = WorkflowConfig(n_simulations=2, t_end=10.0)
        with pytest.raises(ValueError):
            run_adaptive_sweep([ParameterPoint("p", neurospora_small)],
                               cfg, extra_budget=2)

    def test_rejects_negative_budget(self, neurospora_small):
        cfg = WorkflowConfig(n_simulations=2, t_end=10.0, adaptive_ci=0.1)
        with pytest.raises(ValueError):
            run_adaptive_sweep([ParameterPoint("p", neurospora_small)],
                               cfg, extra_budget=-1)


class TestConfigValidation:
    def test_adaptive_knobs(self):
        with pytest.raises(ValueError):
            WorkflowConfig(adaptive_ci=0.0)
        with pytest.raises(ValueError):
            WorkflowConfig(adaptive_min_windows=0)
        assert WorkflowConfig().adaptive is False
        assert WorkflowConfig(adaptive_ci=0.1).adaptive is True
        assert WorkflowConfig(adaptive_repriority=True).adaptive is True
