"""The command-line front-end."""

import pytest

from repro.pipeline.main import build_arg_parser, main


class TestArgParser:
    def test_defaults(self):
        args = build_arg_parser().parse_args([])
        assert args.model == "neurospora"
        assert args.simulations == 16

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["--model", "nonexistent"])

    def test_all_models_listed(self):
        parser = build_arg_parser()
        for model in ("neurospora", "neurospora-cwc", "lotka-volterra",
                      "toggle", "enzyme"):
            args = parser.parse_args(["--model", model])
            assert args.model == model

    def test_all_backends_listed(self):
        parser = build_arg_parser()
        for backend in ("threads", "sequential", "processes", "cluster"):
            args = parser.parse_args(["--backend", backend])
            assert args.backend == backend
        with pytest.raises(SystemExit):
            parser.parse_args(["--backend", "telepathy"])

    def test_cluster_knobs(self):
        args = build_arg_parser().parse_args(
            ["--backend", "cluster", "--workers", "3", "--inflight", "4"])
        assert args.workers == 3 and args.inflight == 4


class TestMain:
    def test_small_run(self, capsys):
        code = main(["--model", "enzyme", "--simulations", "4",
                     "--t-end", "5", "--quantum", "1",
                     "--sample-every", "0.5", "--window", "4",
                     "--sim-workers", "2", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows" in out and "trajectories" in out

    def test_progress_lines(self, capsys):
        main(["--model", "enzyme", "--simulations", "2",
              "--t-end", "4", "--quantum", "1", "--sample-every", "1",
              "--window", "2", "--sim-workers", "1"])
        out = capsys.readouterr().out
        assert "window" in out

    def test_histogram_flag(self, capsys):
        code = main(["--model", "toggle", "--omega", "20",
                     "--simulations", "6", "--t-end", "10",
                     "--quantum", "2", "--sample-every", "1",
                     "--window", "11", "--sim-workers", "2",
                     "--histogram", "6", "--quiet"])
        assert code == 0
        assert "histogram" in capsys.readouterr().out

    def test_neurospora_reports_period(self, capsys):
        code = main(["--model", "neurospora", "--omega", "30",
                     "--simulations", "4", "--t-end", "60",
                     "--quantum", "4", "--sample-every", "0.5",
                     "--window", "20", "--sim-workers", "2", "--quiet"])
        assert code == 0
        assert "period" in capsys.readouterr().out

    def test_trace_flag_prints_report(self, capsys):
        code = main(["--model", "enzyme", "--simulations", "4",
                     "--t-end", "5", "--quantum", "1",
                     "--sample-every", "0.5", "--window", "4",
                     "--sim-workers", "2", "--quiet", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bottleneck:" in out

    def test_processes_backend_runs(self, capsys):
        code = main(["--model", "enzyme", "--simulations", "4",
                     "--t-end", "5", "--quantum", "1",
                     "--sample-every", "0.5", "--window", "4",
                     "--sim-workers", "2", "--quiet",
                     "--backend", "processes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows" in out and "trajectories" in out

    def test_cluster_backend_runs(self, capsys):
        code = main(["--model", "enzyme", "--simulations", "4",
                     "--t-end", "5", "--quantum", "1",
                     "--sample-every", "0.5", "--window", "4",
                     "--sim-workers", "2", "--quiet",
                     "--backend", "cluster", "--workers", "2", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows" in out
        assert "net.results_received" in out  # cluster counters in report

    def test_trace_report_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        code = main(["--model", "enzyme", "--simulations", "4",
                     "--t-end", "5", "--quantum", "1",
                     "--sample-every", "0.5", "--window", "4",
                     "--sim-workers", "2", "--quiet",
                     "--trace-report", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert data["counters"]["sim.trajectories_retired"] == 4


class TestSweepCLI:
    def test_sweep_run_with_store(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({
            "grid": {"translation": [0.3, 0.7]},
            "n_trajectories": 4, "seed": 1}))
        store_dir = tmp_path / "store"
        code = main(["--model", "neurospora", "--omega", "20",
                     "--t-end", "2", "--quantum", "1",
                     "--sample-every", "0.5", "--sim-workers", "2",
                     "--sweep", str(spec_path),
                     "--sweep-store", str(store_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 2 points x 4 trajectories" in out
        assert "final mean [M]" in out

        from repro.pipeline.storage import load_sweep_store
        store = load_sweep_store(store_dir)
        assert store.n_points == 2
        assert store.matrix("M").shape == (2, 5)

    def test_bad_sweep_spec_fails_cleanly(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text("{\"points\": \"nope\"}")
        code = main(["--model", "neurospora",
                     "--sweep", str(spec_path)])
        assert code == 2
        assert "bad --sweep spec" in capsys.readouterr().err
