"""Isolation of concurrently driven controllers (ISSUE 8 satellite 3).

The service runs N tenant workflows in one process, each with its own
SteeringController / AdaptiveController.  Nothing may bleed between
them when their stat workers notify in interleaved order from many
threads: not ``windows_seen``, not ``latest``, not adaptive trace
counters, not a convergence policy's pooled-moment watermark, not an
attached scheduler.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.engines import WindowStatistics
from repro.analysis.stats import CutStatistics
from repro.pipeline import WorkflowConfig
from repro.pipeline.adaptive import (AdaptiveController,
                                     ConvergenceStopPolicy,
                                     make_adaptive_controller)
from repro.pipeline.builder import run_workflow
from repro.pipeline.steering import SteeringController


def _stats(index, mean=10.0, variance=0.0, n=64):
    cut = CutStatistics(grid_index=index, time=float(index),
                        n_trajectories=n, mean=(mean,),
                        variance=(variance,), minimum=(mean,),
                        maximum=(mean,), median=(mean,))
    return WindowStatistics(window_index=index, start_time=float(index),
                            end_time=index + 1.0, cuts=[cut])


def _interleave(controllers, notifications):
    """Drive each controller's notification list from its own pair of
    threads, all racing; returns when every notification landed."""
    threads = []
    barrier = threading.Barrier(2 * len(controllers))

    def pump(controller, batch):
        barrier.wait()
        for stats in batch:
            controller._notify(stats)

    for controller, batch in zip(controllers, notifications):
        half = len(batch) // 2
        threads.append(threading.Thread(
            target=pump, args=(controller, batch[:half])))
        threads.append(threading.Thread(
            target=pump, args=(controller, batch[half:])))
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestSteeringIsolation:
    def test_windows_seen_and_latest_are_per_controller(self):
        a = SteeringController()
        b = SteeringController()
        _interleave(
            [a, b],
            [[_stats(i) for i in range(40)],
             [_stats(i) for i in range(24)]])
        assert a.windows_seen == 40
        assert b.windows_seen == 24

    def test_stop_on_one_leaves_the_other_running(self):
        a = SteeringController()
        b = SteeringController()
        a.stop()
        assert a.stop_requested
        assert not b.stop_requested
        # b keeps accepting windows after a stopped
        assert b._notify(_stats(0)) is True

    def test_stop_after_callbacks_do_not_cross(self):
        a = SteeringController()
        b = SteeringController()
        a._on_progress = a.stop_after(5)
        b._on_progress = b.stop_after(15)
        _interleave(
            [a, b],
            [[_stats(i) for i in range(20)],
             [_stats(i) for i in range(20)]])
        assert a.stop_requested and b.stop_requested
        # each stopped at its own threshold, not the other's
        assert a.windows_seen == 20 and b.windows_seen == 20

    def test_attached_schedulers_stay_per_controller(self):
        class FakeScheduler:
            pass

        a, b = SteeringController(), SteeringController()
        sched_a, sched_b = FakeScheduler(), FakeScheduler()
        a.attach_scheduler(sched_a)
        b.attach_scheduler(sched_b)
        assert a.scheduler is sched_a
        assert b.scheduler is sched_b


class TestAdaptiveIsolation:
    def test_convergence_watermarks_do_not_pool_across_controllers(self):
        """Controller A sees tight statistics (should stop), B sees
        noisy ones (should keep running) -- interleaved notifications
        must not mix their pooled moments."""
        a = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=2)])
        b = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=2)])
        tight = [_stats(i, mean=10.0, variance=1e-6) for i in range(6)]
        noisy = [_stats(i, mean=10.0, variance=1e4) for i in range(6)]
        _interleave([a, b], [tight, noisy])
        assert a.stop_requested, "tight run should have converged"
        assert a.stop_window is not None
        assert not b.stop_requested, "noisy run must keep going"
        assert b.stop_window is None

    def test_trace_counters_drain_per_controller(self):
        a = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=1)])
        b = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=1)])
        for i in range(3):
            a._notify(_stats(i, variance=1e-6))
        counters_a = dict(a.drain_counters())
        counters_b = dict(b.drain_counters())
        assert counters_a.get("adapt.stops") == 1
        assert "adapt.stops" not in counters_b
        # draining is destructive only for its own controller
        assert a.drain_counters() == []

    def test_windows_seen_reset_isolated_between_runs(self):
        """svc_init-style reuse: resetting one controller's counters
        (fresh run) must not clear a live sibling's."""
        a = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=1)])
        b = AdaptiveController([ConvergenceStopPolicy(0.05,
                                                      min_windows=1)])
        for i in range(4):
            a._notify(_stats(i, variance=1e4))
            b._notify(_stats(i, variance=1e4))
        a.reset()
        assert a.windows_seen == 0
        assert b.windows_seen == 4


class TestInterleavedWorkflows:
    @pytest.mark.slow
    def test_two_adaptive_runs_in_one_process_stop_independently(
            self, neurospora_small):
        """The end-to-end version: two steered workflows share the
        process (as service tenants do).  The tight-threshold run stops
        early; the loose one runs to plan; both produce the same
        windows they produce alone."""
        def run_one(threshold, out):
            config = WorkflowConfig(
                n_simulations=8, t_end=40.0, sample_every=0.5,
                quantum=2.0, window_size=10, seed=3,
                adaptive_ci=threshold, adaptive_min_windows=2)
            controller = make_adaptive_controller(config)
            result = run_workflow(neurospora_small, config,
                                  controller=controller)
            out[threshold] = (controller.stop_window,
                              [w.window_index for w in result.windows])

        solo: dict = {}
        run_one(5.0, solo)       # very loose: stops almost immediately
        run_one(1e-12, solo)     # unreachably tight: runs to plan

        paired: dict = {}
        threads = [threading.Thread(target=run_one, args=(th, paired))
                   for th in (5.0, 1e-12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        assert paired == solo
        loose_stop, loose_windows = paired[5.0]
        tight_stop, tight_windows = paired[1e-12]
        assert loose_stop is not None
        assert tight_stop is None
        assert len(loose_windows) < len(tight_windows)
