"""Regression: notify-and-callback must be one atomic step.

Historically ``SteeringController._notify`` bumped ``windows_seen`` under
the lock but invoked ``on_progress`` after releasing it, and the
``stop_after`` callback re-read ``controller.windows_seen`` without the
lock -- under concurrent window notifications (several stat workers) the
stop could fire one window early or late.  Now the whole sequence runs
under the controller's reentrant lock and the callback consumes the count
captured with its own event."""

import threading

from repro.analysis.engines import WindowStatistics
from repro.pipeline.steering import SteeringController


def _stats(index):
    return WindowStatistics(window_index=index, start_time=float(index),
                            end_time=index + 1.0, cuts=[])


class TestNotifyAtomicity:
    def test_event_count_is_captured_with_notification(self):
        controller = SteeringController()
        seen = []
        controller._on_progress = lambda event: seen.append(
            (event.window_index, event.windows_seen))
        for i in range(5):
            controller._notify(_stats(i))
        assert seen == [(i, i + 1) for i in range(5)]

    def test_stop_after_fires_on_exact_window_under_contention(self):
        """Hammer _notify from many threads; the callback must observe
        its own notification's count, so the stop decision happens at
        exactly the n-th window on every repetition."""
        n_threads, per_thread, stop_at = 8, 40, 100
        for _ in range(20):
            controller = SteeringController()
            count_at_stop = []

            def on_progress(event):
                if event.windows_seen >= stop_at and not count_at_stop:
                    count_at_stop.append(event.windows_seen)
                    controller.stop()

            controller._on_progress = on_progress
            barrier = threading.Barrier(n_threads)

            def worker(tid):
                barrier.wait()
                for i in range(per_thread):
                    controller._notify(_stats(tid * per_thread + i))

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert controller.stop_requested
            assert count_at_stop == [stop_at]

    def test_stop_after_helper_observes_event_count(self):
        controller = SteeringController()
        controller._on_progress = controller.stop_after(3)
        stops = []
        for i in range(5):
            controller._notify(_stats(i))
            stops.append(controller.stop_requested)
        assert stops == [False, False, True, True, True]

    def test_callback_may_reenter_controller(self):
        """The lock is reentrant: a callback can read controller state
        (and call stop) without deadlocking."""
        controller = SteeringController()
        observed = []

        def on_progress(event):
            observed.append(controller.windows_seen)  # re-enters the lock
            controller.stop()

        controller._on_progress = on_progress
        controller._notify(_stats(0))
        assert observed == [1]
        assert controller.stop_requested
