"""Result persistence (the Fig. 2 permanent-storage box)."""

import json

import pytest

from repro.pipeline import WorkflowConfig, run_workflow
from repro.pipeline.storage import (
    load_cut_statistics,
    load_trajectories,
    save_cut_statistics,
    save_trajectories,
    save_windows_json,
)


@pytest.fixture(scope="module")
def result(request):
    from repro.models import toggle_switch_network
    config = WorkflowConfig(
        n_simulations=5, t_end=8.0, sample_every=1.0, quantum=4.0,
        n_sim_workers=2, window_size=3, kmeans_k=2, histogram_bins=4,
        filter_width=3, seed=1, keep_cuts=True)
    return run_workflow(toggle_switch_network(omega=15), config)


class TestCutStatisticsCsv:
    def test_roundtrip(self, result, tmp_path):
        path = save_cut_statistics(result, tmp_path / "cuts.csv",
                                   observable_names=("U", "V"))
        loaded = load_cut_statistics(path)
        original = result.cut_statistics()
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.grid_index == b.grid_index
            assert a.time == b.time
            assert a.mean == b.mean
            assert a.variance == pytest.approx(b.variance)
            assert a.median == b.median

    def test_header_names(self, result, tmp_path):
        path = save_cut_statistics(result, tmp_path / "cuts.csv",
                                   observable_names=("U", "V"))
        header = path.read_text().splitlines()[0]
        assert "U_mean" in header and "V_median" in header

    def test_name_count_validated(self, result, tmp_path):
        with pytest.raises(ValueError):
            save_cut_statistics(result, tmp_path / "x.csv",
                                observable_names=("only-one",))


class TestTrajectoriesCsv:
    def test_roundtrip(self, result, tmp_path):
        trajectories = result.trajectories()
        path = save_trajectories(trajectories, tmp_path / "traj.csv")
        loaded = load_trajectories(path)
        assert len(loaded) == len(trajectories)
        for a, b in zip(trajectories, loaded):
            assert a.task_id == b.task_id
            assert a.times == b.times
            assert a.samples == b.samples


class TestWindowsJson:
    def test_structure(self, result, tmp_path):
        path = save_windows_json(result, tmp_path / "windows.json")
        payload = json.loads(path.read_text())
        assert payload["n_simulations"] == 5
        assert len(payload["windows"]) == result.n_windows
        first = payload["windows"][0]
        assert first["window_index"] == 0
        assert len(first["cuts"]) == 3
        # mined structures serialised too
        assert "clusters" in first
        assert "histograms" in first
        assert "filtered_mean" in first
        hist = first["histograms"]["0"]
        assert sum(hist["counts"]) == 5
