"""Tracing through the full simulation-analysis workflow."""

import json

import pytest

from repro.ff.trace import RunReport
from repro.pipeline import WorkflowConfig, run_workflow

BACKENDS = ("sequential", "threads")


def config(**overrides):
    base = dict(n_simulations=4, t_end=8.0, sample_every=0.5, quantum=2.0,
                n_sim_workers=2, n_stat_workers=1, window_size=5, seed=0)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestTracedWorkflow:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_report_attached_with_sim_counters(self, neurospora_small,
                                               backend):
        result = run_workflow(neurospora_small,
                              config(backend=backend, trace=True))
        report = result.trace_report
        assert isinstance(report, RunReport)
        # domain-level counters from the sim engine and scheduler hooks
        assert report.counters["sim.steps"] > 0
        assert report.counters["sim.quanta"] >= 4
        assert report.counters["sim.trajectories_retired"] == 4
        assert report.counters["sim.tasks_completed"] == 4
        # every farm worker shows up as a traced node
        names = {n["name"] for n in report.nodes}
        assert any(n.startswith("sim-farm.w") for n in names)

    def test_bottleneck_named(self, neurospora_small):
        result = run_workflow(neurospora_small, config(trace=True))
        bn = result.trace_report.bottleneck()
        assert bn["slowest_stage"] is not None
        assert bn["slowest_stage"]["name"]
        assert bn["diagnosis"] != "no activity recorded"

    def test_report_written_to_path(self, neurospora_small, tmp_path):
        path = tmp_path / "report.json"
        result = run_workflow(
            neurospora_small,
            config(trace=True, trace_report_path=str(path)))
        assert result.trace_report is not None
        data = json.loads(path.read_text())
        assert data["counters"]["sim.trajectories_retired"] == 4
        assert "bottleneck" in data

    def test_untraced_by_default(self, neurospora_small):
        result = run_workflow(neurospora_small, config())
        assert result.trace_report is None

    def test_traced_and_untraced_results_identical(self, neurospora_small):
        plain = run_workflow(neurospora_small, config())
        traced = run_workflow(neurospora_small, config(trace=True))
        assert [(s.grid_index, s.mean, s.variance)
                for s in plain.cut_statistics()] == \
            [(s.grid_index, s.mean, s.variance)
             for s in traced.cut_statistics()]
