"""The complete simulation-analysis workflow."""

import pytest

from repro.cwc.network import FlatSimulator
from repro.pipeline import (
    SteeringController,
    WorkflowConfig,
    build_workflow,
    run_workflow,
)

BACKENDS = ("sequential", "threads")


def config(**overrides):
    base = dict(n_simulations=6, t_end=10.0, sample_every=0.5, quantum=2.0,
                n_sim_workers=3, n_stat_workers=2, window_size=5, seed=0)
    base.update(overrides)
    return WorkflowConfig(**base)


class TestEndToEnd:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_window_stream_complete_and_ordered(self, neurospora_small,
                                                backend):
        result = run_workflow(neurospora_small, config(backend=backend))
        assert [w.window_index for w in result.windows] == \
            list(range(result.n_windows))
        stats = result.cut_statistics()
        assert len(stats) == 21  # t_end/sample_every + 1
        assert [s.grid_index for s in stats] == list(range(21))

    def test_backends_produce_identical_statistics(self, neurospora_small):
        seq = run_workflow(neurospora_small, config(backend="sequential"))
        thr = run_workflow(neurospora_small, config(backend="threads"))
        assert [(s.grid_index, s.mean, s.variance)
                for s in seq.cut_statistics()] == \
            [(s.grid_index, s.mean, s.variance)
             for s in thr.cut_statistics()]

    def test_trajectories_match_direct_runs(self, neurospora_small):
        """End-to-end integrity: every reassembled trajectory equals a
        direct simulation with the same derived seed."""
        cfg = config(keep_cuts=True)
        result = run_workflow(neurospora_small, cfg)
        for task_id, trajectory in enumerate(result.trajectories()):
            direct = FlatSimulator(neurospora_small,
                                   seed=cfg.seed + task_id).run(
                cfg.t_end, cfg.sample_every)
            assert trajectory.samples == direct.samples

    def test_mean_trajectory_accessor(self, neurospora_small):
        result = run_workflow(neurospora_small, config())
        times, means = result.mean_trajectory(0)
        assert len(times) == len(means) == 21
        assert times == sorted(times)

    def test_trajectories_requires_keep_cuts(self, neurospora_small):
        result = run_workflow(neurospora_small, config(keep_cuts=False))
        with pytest.raises(ValueError):
            result.trajectories()

    def test_kmeans_and_filtering_flow_through(self, toggle_small):
        cfg = config(kmeans_k=2, filter_width=3)
        result = run_workflow(toggle_small, cfg)
        for window in result.windows:
            assert set(window.clusters) == {0, 1}
            assert window.clusters[0].k <= 2
            assert 0 in window.filtered_mean

    def test_overlapping_windows(self, neurospora_small):
        cfg = config(window_size=6, window_slide=3)
        result = run_workflow(neurospora_small, cfg)
        starts = [w.cuts[0].grid_index for w in result.windows]
        assert starts[:3] == [0, 3, 6]
        # dedup: cut stats still unique and complete
        stats = result.cut_statistics()
        assert [s.grid_index for s in stats] == list(range(21))

    def test_cwc_engine_workflow(self, neurospora_cwc_small):
        cfg = config(n_simulations=3, t_end=4.0, engine="cwc")
        result = run_workflow(neurospora_cwc_small, cfg)
        assert result.n_windows >= 1


class TestSteering:
    def test_progress_events_delivered(self, neurospora_small):
        events = []
        controller = SteeringController(on_progress=events.append)
        result = run_workflow(neurospora_small, config(),
                              controller=controller)
        assert len(events) == result.n_windows
        assert controller.windows_seen == result.n_windows
        assert controller.latest is result.windows[-1]
        assert [e.window_index for e in events] == \
            [w.window_index for w in result.windows]

    def test_stop_after_helper(self, neurospora_small):
        controller = SteeringController()
        controller._on_progress = controller.stop_after(2)
        long_cfg = config(t_end=500.0, quantum=1.0)
        result = run_workflow(neurospora_small, long_cfg,
                              controller=controller)
        assert result.n_windows < 30  # far short of the ~200 of a full run
        assert controller.stop_requested


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(n_simulations=0),
        dict(t_end=0),
        dict(sample_every=-1),
        dict(quantum=0),
        dict(n_sim_workers=0),
        dict(n_stat_workers=0),
        dict(window_size=0),
        dict(window_slide=9),  # > window_size (5)
    ])
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            config(**bad)

    def test_derived_quantities(self):
        cfg = config(t_end=10.0, sample_every=0.5, quantum=3.0)
        assert cfg.n_grid_points == 21
        assert cfg.n_quanta == 4

    def test_build_workflow_returns_pipeline(self, neurospora_small):
        workflow = build_workflow(neurospora_small, config())
        from repro.ff.pipeline import Pipeline
        assert isinstance(workflow, Pipeline)
