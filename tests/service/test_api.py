"""The HTTP + WebSocket surface, driven through a live server on a
threads fleet (fast; the processes leg is the integration suite's)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.run_manager import RunState

SMALL = {
    "model": "lotka-volterra",
    "config": {"n_simulations": 4, "t_end": 3.0, "sample_every": 0.25,
               "quantum": 1.0, "window_size": 6, "window_slide": 6,
               "kmeans_k": 2, "seed": 3},
}

SLOW = {
    "model": "lotka-volterra",
    "config": {"n_simulations": 64, "t_end": 60.0, "sample_every": 0.2,
               "quantum": 0.5, "window_size": 50, "window_slide": 50,
               "kmeans_k": 2, "seed": 4},
}


@pytest.fixture(scope="module")
def app():
    with ServiceApp(port=0, n_workers=2, backend="threads")\
            .start_background() as served:
        yield served


@pytest.fixture(scope="module")
def client(app):
    return ServiceClient(*app.address)


class TestRunLifecycle:
    def test_submit_status_stream_complete(self, client):
        run_id = client.submit(SMALL)
        assert run_id.startswith("run-")
        events = list(client.stream(run_id))
        assert events[-1]["type"] == "end"
        assert events[-1]["state"] == RunState.DONE
        windows = [e for e in events if e["type"] == "window"]
        assert windows
        assert [w["seq"] for w in windows] == \
            list(range(1, len(windows) + 1))
        status = client.status(run_id)
        assert status["state"] == RunState.DONE
        assert status["windows_emitted"] == len(windows)
        assert status["fleet"] is None  # tenant released after the run

    def test_stream_replays_after_completion(self, client):
        """A subscriber attaching after the run ended sees the whole
        stream -- and it is identical on every attach."""
        run_id = client.submit(SMALL)
        live = list(client.stream(run_id))
        replay_one = list(client.stream(run_id))
        replay_two = list(client.stream(run_id))
        assert live == replay_one == replay_two

    def test_runs_listing_includes_submissions(self, client):
        run_id = client.submit(SMALL)
        client.wait(run_id)
        assert run_id in {r["run_id"] for r in client.runs()}

    def test_cancel_stops_mid_run(self, client):
        run_id = client.submit(SLOW)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.status(run_id)["state"] == RunState.RUNNING:
                break
            time.sleep(0.01)
        status = client.cancel(run_id)
        assert status["cancel_requested"]
        end = [e for e in client.stream(run_id) if e["type"] == "end"][0]
        assert end["state"] == RunState.CANCELLED
        # cancelled well short of the full run
        full = SLOW["config"]["t_end"] / SLOW["config"]["sample_every"] \
            / SLOW["config"]["window_size"]
        assert end["windows_streamed"] < full

    def test_steer_stop_equals_cancel(self, client):
        run_id = client.submit(SLOW)
        status = client.steer(run_id, {"action": "stop"})
        assert status["cancel_requested"]
        end = list(client.stream(run_id))[-1]
        assert end["state"] == RunState.CANCELLED

    def test_steer_repriority_reports_moves(self, client):
        run_id = client.submit(SLOW)
        try:
            status = client.steer(run_id, {"action": "repriority"})
            assert "reprioritized" in status
        finally:
            client.cancel(run_id)
            client.wait(run_id)

    def test_concurrent_streams_of_one_run_agree(self, client):
        run_id = client.submit(SMALL)
        streams: list = [None, None]

        def consume(slot):
            streams[slot] = list(client.stream(run_id))

        threads = [threading.Thread(target=consume, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert streams[0] == streams[1]
        assert streams[0][-1]["type"] == "end"


class TestErrorSurface:
    def test_unknown_run_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("run-999999")
        assert err.value.status == 404

    def test_bad_spec_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"model": "not-a-model"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit({"model": "toggle", "config": {"backend":
                                                         "cluster"}})
        assert err.value.status == 400

    def test_bad_steer_action_400(self, client):
        run_id = client.submit(SMALL)
        client.wait(run_id)
        with pytest.raises(ServiceError) as err:
            client.steer(run_id, {"action": "warp"})
        assert err.value.status == 400

    def test_unknown_route_404_and_method_405(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("DELETE", "/runs")
        assert err.value.status == 405

    def test_stream_without_upgrade_426(self, client):
        run_id = client.submit(SMALL)
        client.wait(run_id)
        with pytest.raises(ServiceError) as err:
            client._request("GET", f"/runs/{run_id}/stream")
        assert err.value.status == 426

    def test_fleet_endpoint(self, client):
        stats = client.fleet()
        assert stats["backend"] == "threads"
        assert stats["n_workers"] == 2
        assert "swept_at_start" in stats

    def test_failed_run_reports_error(self):
        """A run that explodes after validation must surface as a failed
        run with its error in the end event, not a hung one.  (Driven
        through the manager: the HTTP layer validates model names, so
        the build-time failure needs an in-process path.)"""
        from repro.service.fleet import SharedFleet
        from repro.service.protocol import RunSpec
        from repro.service.run_manager import RunManager

        spec = RunSpec.from_jsonable(SMALL)
        spec.model = "vanished"  # validated name removed before build
        fleet = SharedFleet(1, backend="threads").start()
        manager = RunManager(fleet)
        try:
            handle = manager.submit(spec)
            assert handle.wait(timeout=30)
            assert handle.state == RunState.FAILED
            assert "vanished" in handle.error
            end = handle.events()[-1]
            assert end["type"] == "end"
            assert end["state"] == RunState.FAILED
        finally:
            manager.close()
            fleet.close()
