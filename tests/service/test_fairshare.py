"""Stride scheduler: proportional share, joins, and starvation-freedom."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.service.fairshare import StrideScheduler


def _run(sched, ready, n):
    picks = Counter()
    for _ in range(n):
        picks[sched.select(ready)] += 1
    return picks


class TestSelection:
    def test_empty_ready_returns_none(self):
        sched = StrideScheduler()
        sched.add("a")
        assert sched.select([]) is None

    def test_unknown_keys_in_ready_are_ignored(self):
        sched = StrideScheduler()
        sched.add("a")
        assert sched.select(["ghost", "a"]) == "a"
        assert sched.select(["ghost"]) is None

    def test_equal_weights_alternate(self):
        sched = StrideScheduler()
        sched.add("a")
        sched.add("b")
        picks = [sched.select(["a", "b"]) for _ in range(10)]
        assert picks.count("a") == 5
        assert picks.count("b") == 5
        # strict alternation: after a's pick, a's pass exceeds b's
        assert all(picks[i] != picks[i + 1] for i in range(9))

    def test_weights_give_proportional_share(self):
        sched = StrideScheduler()
        sched.add("heavy", weight=3.0)
        sched.add("light", weight=1.0)
        picks = _run(sched, ["heavy", "light"], 400)
        # 3:1 tickets -> 300:100 service (integer stride rounding may
        # shift a pick or two at the margin)
        assert abs(picks["heavy"] - 300) <= 2
        assert picks["heavy"] + picks["light"] == 400

    def test_only_ready_tenant_wins_regardless_of_pass(self):
        sched = StrideScheduler()
        sched.add("a")
        sched.add("b")
        for _ in range(50):
            assert sched.select(["a"]) == "a"
        # b never ran, so b is picked as soon as it becomes ready
        assert sched.select(["a", "b"]) == "b"


class TestDynamicMembership:
    def test_late_joiner_starts_at_global_pass(self):
        """A tenant joining mid-stream must not monopolise the fleet to
        'catch up' on time before it existed."""
        sched = StrideScheduler()
        sched.add("old")
        for _ in range(1000):
            sched.select(["old"])
        sched.add("new")
        picks = _run(sched, ["old", "new"], 100)
        assert abs(picks["old"] - picks["new"]) <= 1

    def test_remove_and_readd_resets_cleanly(self):
        sched = StrideScheduler()
        sched.add("a")
        sched.add("b")
        _run(sched, ["a", "b"], 10)
        sched.remove("a")
        assert "a" not in sched
        assert sched.select(["a", "b"]) == "b"
        sched.add("a")  # same key, new registration
        picks = _run(sched, ["a", "b"], 100)
        assert abs(picks["a"] - picks["b"]) <= 1

    def test_remove_is_idempotent(self):
        sched = StrideScheduler()
        sched.add("a")
        sched.remove("a")
        sched.remove("a")
        assert sched.tenants() == []

    def test_duplicate_add_rejected(self):
        sched = StrideScheduler()
        sched.add("a")
        with pytest.raises(KeyError):
            sched.add("a")

    def test_nonpositive_weight_rejected(self):
        sched = StrideScheduler()
        with pytest.raises(ValueError):
            sched.add("a", weight=0)


class TestAccounting:
    def test_lag_orders_tenants_by_service_owed(self):
        """lag is 0 for the most-owed tenant and negative for tenants
        served ahead of the fair-share floor."""
        sched = StrideScheduler()
        sched.add("served")
        sched.add("waiting")
        for _ in range(20):
            sched.select(["served"])
        assert sched.lag("waiting") == 0
        assert sched.lag("served") < 0
        assert sched.lag("waiting") > sched.lag("served")
        with pytest.raises(KeyError):
            sched.lag("ghost")

    def test_snapshot_exposes_pass_and_weight(self):
        """Pass values are reported relative to the active floor."""
        sched = StrideScheduler()
        sched.add("a", weight=2.0)
        sched.add("b")
        sched.select(["a", "b"])  # tie broken toward a (registered first)
        snap = sched.snapshot()
        assert snap["a"]["weight"] == 2.0
        assert snap["a"]["pass"] > 0
        assert snap["b"]["pass"] == 0
        assert snap["a"]["selections"] == 1
        assert snap["b"]["selections"] == 0
