"""SharedFleet semantics on the threads backend: tenancy, backpressure,
fair share, and lifecycle.  (The processes/cluster legs are covered by
the integration suite; the scheduling logic is backend-independent.)"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import pytest

from repro.service.fleet import FleetClosed, SharedFleet


def _fleet(**kwargs):
    kwargs.setdefault("backend", "threads")
    kwargs.setdefault("n_workers", 2)
    return SharedFleet(**kwargs).start()


class TestLifecycle:
    def test_start_is_idempotent_while_open(self):
        fleet = _fleet()
        try:
            assert fleet.start() is fleet
        finally:
            fleet.close()

    def test_close_is_idempotent(self):
        fleet = _fleet()
        fleet.close()
        fleet.close()
        assert fleet.closed

    def test_closed_fleet_rejects_everything(self):
        fleet = _fleet()
        fleet.close()
        with pytest.raises(FleetClosed):
            fleet.start()
        with pytest.raises(FleetClosed):
            fleet.client("t")

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            SharedFleet(0)
        with pytest.raises(ValueError):
            SharedFleet(2, backend="gpu-rack")
        with pytest.raises(ValueError):
            SharedFleet(2, max_inflight=0)

    def test_close_fails_pending_lets_inflight_finish(self):
        release = threading.Event()
        fleet = _fleet(n_workers=1)
        client = fleet.client("t", max_inflight=1)
        running = client.submit(release.wait, 10)
        time.sleep(0.1)  # let it dispatch and occupy the only worker
        queued = client.submit(lambda: "never")
        closer = threading.Thread(target=fleet.close)
        closer.start()
        with pytest.raises(FleetClosed):
            queued.result(timeout=5)
        release.set()  # the in-flight job completes normally
        assert running.result(timeout=5) is True
        closer.join(timeout=10)


class TestTenancy:
    def test_submit_requires_registration(self):
        fleet = _fleet()
        try:
            with pytest.raises(KeyError):
                fleet.submit("ghost", lambda: 1)
        finally:
            fleet.close()

    def test_duplicate_tenant_rejected(self):
        fleet = _fleet()
        try:
            fleet.client("t")
            with pytest.raises(KeyError):
                fleet.client("t")
        finally:
            fleet.close()

    def test_tenant_key_reusable_after_release(self):
        """The service runs tenants sequentially under reused fleet --
        releasing a tenant must free its key."""
        fleet = _fleet()
        try:
            client = fleet.client("t")
            assert client.submit(lambda: 41).result(timeout=10) == 41
            client.close()
            client2 = fleet.client("t")
            assert client2.submit(lambda: 42).result(timeout=10) == 42
        finally:
            fleet.close()

    def test_release_fails_pending_work(self):
        release = threading.Event()
        fleet = _fleet(n_workers=1)
        try:
            client = fleet.client("t", max_inflight=1)
            running = client.submit(release.wait, 10)
            time.sleep(0.1)
            queued = client.submit(lambda: "never")
            client.close()
            with pytest.raises(FleetClosed):
                queued.result(timeout=5)
            release.set()
            assert running.result(timeout=5) is True
        finally:
            fleet.close()

    def test_results_and_exceptions_propagate(self):
        fleet = _fleet()
        try:
            client = fleet.client("t")
            assert client.submit(pow, 2, 10).result(timeout=10) == 1024
            boom = client.submit(_raise_value_error)
            with pytest.raises(ValueError, match="boom"):
                boom.result(timeout=10)
        finally:
            fleet.close()


def _raise_value_error():
    raise ValueError("boom")


class TestBackpressure:
    def test_per_tenant_inflight_bound_holds(self):
        """A tenant with max_inflight=1 never has two quanta running at
        once, however many it queues."""
        peak = [0]
        current = [0]
        lock = threading.Lock()

        def job():
            with lock:
                current[0] += 1
                peak[0] = max(peak[0], current[0])
            time.sleep(0.02)
            with lock:
                current[0] -= 1

        fleet = _fleet(n_workers=4)
        try:
            client = fleet.client("t", max_inflight=1)
            futures = [client.submit(job) for _ in range(10)]
            wait(futures, timeout=30)
            assert peak[0] == 1
        finally:
            fleet.close()

    def test_global_inflight_bounded_by_workers(self):
        peak = [0]
        current = [0]
        lock = threading.Lock()

        def job():
            with lock:
                current[0] += 1
                peak[0] = max(peak[0], current[0])
            time.sleep(0.02)
            with lock:
                current[0] -= 1

        fleet = _fleet(n_workers=2)
        try:
            clients = [fleet.client(f"t{i}") for i in range(4)]
            futures = [c.submit(job) for c in clients for _ in range(5)]
            wait(futures, timeout=30)
            assert peak[0] <= 2
        finally:
            fleet.close()


class TestFairShare:
    def test_backlogged_tenant_cannot_starve_interactive(self):
        """With a deep sweep backlog on a 1-worker fleet, an interactive
        tenant's jobs still interleave ~1:1 (equal weights)."""
        order = []
        lock = threading.Lock()

        def job(tag):
            with lock:
                order.append(tag)
            time.sleep(0.005)

        fleet = _fleet(n_workers=1)
        try:
            sweep = fleet.client("sweep", max_inflight=1)
            interactive = fleet.client("interactive", max_inflight=1)
            futures = [sweep.submit(job, "s") for _ in range(20)]
            time.sleep(0.05)  # sweep builds a backlog first
            futures += [interactive.submit(job, "i") for _ in range(5)]
            wait(futures, timeout=30)
            # every interactive job dispatched well before the sweep
            # backlog drained: none of them sits in the final stretch
            last_i = max(i for i, tag in enumerate(order) if tag == "i")
            assert last_i < len(order) - 5, order
        finally:
            fleet.close()

    def test_weights_skew_dispatch_ratio(self):
        counts = {"heavy": 0, "light": 0}
        lock = threading.Lock()

        def job(tag):
            with lock:
                counts[tag] += 1
            time.sleep(0.002)

        fleet = _fleet(n_workers=1)
        try:
            heavy = fleet.client("heavy", weight=4.0, max_inflight=1)
            light = fleet.client("light", weight=1.0, max_inflight=1)
            futures = [heavy.submit(job, "heavy") for _ in range(40)]
            futures += [light.submit(job, "light") for _ in range(40)]
            # sample mid-flight: once both backlogs are deep, dispatch
            # follows the 4:1 ticket ratio
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with lock:
                    done = counts["heavy"] + counts["light"]
                if done >= 30:
                    break
                time.sleep(0.01)
            with lock:
                heavy_n, light_n = counts["heavy"], counts["light"]
            assert heavy_n > 2 * light_n, (heavy_n, light_n)
            wait(futures, timeout=30)
        finally:
            fleet.close()

    def test_stats_expose_tenant_accounting(self):
        fleet = _fleet()
        try:
            client = fleet.client("t", weight=2.0)
            client.submit(lambda: 1).result(timeout=10)
            stats = fleet.stats()
            assert stats["backend"] == "threads"
            assert stats["quanta_dispatched"] == 1
            tenant = stats["tenants"]["t"]
            assert tenant["submitted"] == 1
            assert tenant["completed"] == 1
            assert tenant["weight"] == 2.0
            assert fleet.tenant_stats("ghost") is None
        finally:
            fleet.close()
