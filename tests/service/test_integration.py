"""Acceptance: N concurrent tenant runs over one shared process fleet.

Pins the two promises the service makes (ISSUE 8 acceptance criteria):

(a) **bit-identical results** -- every tenant's streamed window
    statistics equal, field for field and bit for bit, a solo batch run
    (the CLI path, :func:`repro.pipeline.run_workflow`) of the same
    config, no matter how the fleet interleaved the tenants;

(b) **fair share** -- with a saturating parameter sweep co-resident, an
    interactive run's latency stays within 2x of its solo latency
    (FIFO dispatch would make it wait for the sweep's entire backlog).
"""

from __future__ import annotations

import glob
import threading
import time

import pytest

from repro.pipeline import run_workflow
from repro.service.app import ServiceApp
from repro.service.client import ServiceClient
from repro.service.protocol import RunSpec, windows_to_jsonable
from repro.service.run_manager import RunState

pytestmark = pytest.mark.slow


def tenant_spec(seed, n_simulations=8, t_end=4.0, n_sim_workers=2):
    return {
        "model": "lotka-volterra",
        "config": {"n_simulations": n_simulations, "t_end": t_end,
                   "sample_every": 0.2, "quantum": 1.0,
                   "window_size": 10, "window_slide": 10,
                   "kmeans_k": 2, "seed": seed,
                   "n_sim_workers": n_sim_workers},
    }


@pytest.fixture(scope="module")
def app():
    with ServiceApp(port=0, n_workers=4, backend="processes")\
            .start_background() as served:
        yield served


@pytest.fixture(scope="module")
def client(app):
    return ServiceClient(*app.address, timeout=300.0)


class TestBitIdentical:
    def test_three_concurrent_tenants_match_solo_cli_runs(self, client):
        """Three runs race over the shared fleet; each tenant's stream
        must equal its solo batch result exactly."""
        specs = {seed: tenant_spec(seed) for seed in (101, 202, 303)}
        run_ids = {seed: client.submit(spec)
                   for seed, spec in specs.items()}
        streamed: dict[int, list] = {}
        errors: list[BaseException] = []

        def consume(seed):
            try:
                streamed[seed] = client.stream_windows(run_ids[seed])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=consume, args=(seed,))
                   for seed in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors

        for seed, spec in specs.items():
            parsed = RunSpec.from_jsonable(spec)
            solo = run_workflow(parsed.build_model(), parsed.config)
            expected = windows_to_jsonable(solo.windows)
            assert expected, f"seed {seed}: empty batch result"
            assert streamed[seed] == expected, \
                f"seed {seed}: streamed windows differ from solo run"

    def test_no_shared_memory_leaked_across_runs(self, client):
        """Per-run namespaces + teardown sweep: nothing left in /dev/shm
        once the tenants of the previous test finished."""
        run_id = client.submit(tenant_spec(909, n_simulations=4,
                                           t_end=2.0))
        client.wait(run_id)
        assert glob.glob("/dev/shm/repro-shm-*") == []


class TestFairShare:
    def test_interactive_latency_within_2x_of_solo(self, client):
        """Fairness on a CI box: this container typically has ONE core,
        so wall-clock share equals the share of *running* worker
        processes -- stride dispatch order alone cannot beat a 50/50
        CPU split.  The per-tenant in-flight bound (ISSUE 8's
        backpressure) is what protects latency here: the sweep's
        backlog is effectively unbounded, but it may occupy only one
        worker slot, so the interactive run keeps the lion's share of
        the machine.  (Pure dispatch-order fairness is pinned
        separately in test_fleet.py on deterministic thread jobs.)"""
        interactive = tenant_spec(11, n_simulations=8, t_end=4.0,
                                  n_sim_workers=2)

        # solo baseline: the interactive run with the fleet to itself
        t0 = time.monotonic()
        solo_id = client.submit(interactive)
        solo_windows = client.stream_windows(solo_id)
        solo_s = time.monotonic() - t0
        assert solo_windows

        # a saturating sweep: a backlog of ~77k quanta that would hold
        # every slot forever if the service let it; backpressure caps
        # its occupancy at one worker
        sweep = tenant_spec(77, n_simulations=128, t_end=600.0,
                            n_sim_workers=8)
        sweep["max_inflight"] = 1
        sweep_id = client.submit(sweep)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            stats = client.fleet()["tenants"].get(f"{sweep_id}")
            if stats and stats["inflight"] >= 1 and stats["pending"] >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("sweep never saturated its worker share")

        try:
            t0 = time.monotonic()
            co_id = client.submit(interactive)
            co_windows = client.stream_windows(co_id)
            co_s = time.monotonic() - t0
        finally:
            client.cancel(sweep_id)
            end = list(client.stream(sweep_id))[-1]
            assert end["state"] == RunState.CANCELLED

        # same spec, same results -- co-residency affects when, not what
        assert co_windows == solo_windows
        assert co_s <= 2.0 * solo_s + 0.5, \
            (f"interactive run took {co_s:.2f}s co-resident vs "
             f"{solo_s:.2f}s solo (limit 2x)")

    def test_sweep_made_progress_while_sharing(self, client):
        """The flip side of fairness: the interactive tenant must not
        have starved the sweep either -- dispatch counters show both
        were served."""
        stats = client.fleet()
        assert stats["quanta_dispatched"] > 0
