"""Wire schema: spec validation, float round-trips, WS framing."""

from __future__ import annotations

import math
import struct

import pytest

from repro.service.protocol import (
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    ProtocolError,
    RunSpec,
    WSDecoder,
    dumps,
    loads,
    window_to_jsonable,
    ws_accept_key,
    ws_encode,
)


class TestRunSpec:
    def test_minimal_spec(self):
        spec = RunSpec.from_jsonable({"model": "lotka-volterra"})
        assert spec.model == "lotka-volterra"
        assert spec.weight == 1.0
        assert spec.build_model() is not None

    def test_config_fields_pass_through(self):
        spec = RunSpec.from_jsonable({
            "model": "neurospora",
            "omega": 50,
            "config": {"n_simulations": 16, "seed": 7, "quantum": 2.0},
            "weight": 4,
            "label": "sweep"})
        assert spec.config.n_simulations == 16
        assert spec.config.seed == 7
        assert spec.omega == 50.0
        assert spec.weight == 4.0
        assert spec.label == "sweep"

    def test_unknown_model_rejected(self):
        with pytest.raises(ProtocolError, match="unknown model"):
            RunSpec.from_jsonable({"model": "fishes"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            RunSpec.from_jsonable(["model"])

    def test_service_owned_config_fields_rejected(self):
        """backend/trace/zero_copy belong to the service, not tenants --
        naming them must fail loudly, not be silently ignored."""
        for field in ("backend", "trace", "zero_copy", "keep_cuts"):
            with pytest.raises(ProtocolError, match="not settable"):
                RunSpec.from_jsonable({"model": "toggle",
                                       "config": {field: True}})

    def test_invalid_config_value_rejected(self):
        with pytest.raises(ProtocolError, match="bad config"):
            RunSpec.from_jsonable({"model": "toggle",
                                   "config": {"n_simulations": -1}})

    def test_bad_weight_rejected(self):
        with pytest.raises(ProtocolError, match="weight"):
            RunSpec.from_jsonable({"model": "toggle", "weight": 0})
        with pytest.raises(ProtocolError, match="max_inflight"):
            RunSpec.from_jsonable({"model": "toggle", "max_inflight": 0})

    def test_adaptive_species_coerced_to_tuple(self):
        spec = RunSpec.from_jsonable({
            "model": "toggle",
            "config": {"adaptive_ci": 0.5, "adaptive_species": [0, 1]}})
        assert spec.config.adaptive_species == (0, 1)


class TestSweepSpec:
    def test_points_form(self):
        spec = RunSpec.from_jsonable({
            "model": "neurospora",
            "sweep": {"points": [{"translation": 0.2}, {}],
                      "n_trajectories": 8, "seed": 3}})
        assert spec.sweep is not None
        assert spec.sweep.n_points == 2
        assert spec.sweep.n_trajectories == 8
        assert spec.sweep.seed == 3

    def test_grid_form(self):
        spec = RunSpec.from_jsonable({
            "model": "neurospora",
            "sweep": {"grid": {"translation": [0.2, 0.5, 0.8]},
                      "n_trajectories": 4}})
        assert spec.sweep.n_points == 3
        assert spec.sweep.points[1] == {"translation": 0.5}

    def test_absent_sweep_stays_none(self):
        assert RunSpec.from_jsonable({"model": "toggle"}).sweep is None

    def test_non_object_sweep_rejected(self):
        with pytest.raises(ProtocolError, match="sweep must be"):
            RunSpec.from_jsonable({"model": "toggle", "sweep": [1, 2]})

    def test_malformed_sweep_rejected(self):
        with pytest.raises(ProtocolError, match="bad sweep spec"):
            RunSpec.from_jsonable({"model": "toggle",
                                   "sweep": {"points": []}})
        with pytest.raises(ProtocolError, match="bad sweep spec"):
            RunSpec.from_jsonable({"model": "toggle",
                                   "sweep": {"n_trajectories": 4}})


class TestJSONBitExactness:
    def test_awkward_floats_round_trip(self):
        values = [0.1, 1 / 3, 1e-308, 1.7976931348623157e308,
                  math.pi, -0.0, 123456789.123456789]
        decoded = loads(dumps(values))
        for original, back in zip(values, decoded):
            assert struct.pack("<d", original) == struct.pack("<d", back)

    def test_loads_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            loads(b"{not json")
        with pytest.raises(ProtocolError):
            loads(b"\xff\xfe")


class TestWindowSerialisation:
    def test_window_round_trips_through_json(self, lotka_small):
        from repro.pipeline import WorkflowConfig, run_workflow
        config = WorkflowConfig(n_simulations=4, t_end=3.0,
                                sample_every=0.25, quantum=1.0,
                                window_size=8, window_slide=8,
                                kmeans_k=2, seed=5)
        result = run_workflow(lotka_small, config)
        assert result.windows
        payload = [window_to_jsonable(w) for w in result.windows]
        assert loads(dumps(payload)) == payload


class TestWSFraming:
    def test_accept_key_rfc_vector(self):
        # the worked example from RFC 6455 section 1.3
        assert ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==") == \
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    @pytest.mark.parametrize("size", [0, 5, 125, 126, 127, 65535, 65536,
                                      70000])
    @pytest.mark.parametrize("mask", [False, True])
    def test_encode_decode_round_trip(self, size, mask):
        payload = bytes(i % 251 for i in range(size))
        frame = ws_encode(payload, OP_BINARY, mask=mask)
        messages = WSDecoder().feed(frame)
        assert messages == [(OP_BINARY, payload)]

    def test_partial_feed_reassembles(self):
        payload = b"x" * 300
        frame = ws_encode(payload, OP_TEXT, mask=True)
        decoder = WSDecoder()
        out = []
        for i in range(0, len(frame), 7):
            out.extend(decoder.feed(frame[i:i + 7]))
        assert out == [(OP_TEXT, payload)]

    def test_fragmented_message_reassembled(self):
        decoder = WSDecoder()
        part1 = ws_encode(b"hello ", OP_TEXT, fin=False)
        part2 = ws_encode(b"wor", OP_CONT, fin=False)
        part3 = ws_encode(b"ld", OP_CONT, fin=True)
        assert decoder.feed(part1) == []
        assert decoder.feed(part2) == []
        assert decoder.feed(part3) == [(OP_TEXT, b"hello world")]

    def test_control_frame_interleaves_fragments(self):
        decoder = WSDecoder()
        decoder.feed(ws_encode(b"frag", OP_TEXT, fin=False))
        assert decoder.feed(ws_encode(b"p", OP_PING)) == [(OP_PING, b"p")]
        assert decoder.feed(ws_encode(b"ment", OP_CONT, fin=True)) == \
            [(OP_TEXT, b"fragment")]

    def test_multiple_frames_one_packet(self):
        data = (ws_encode(b"one", OP_TEXT) + ws_encode(b"two", OP_TEXT)
                + ws_encode(b"", OP_CLOSE))
        assert WSDecoder().feed(data) == [
            (OP_TEXT, b"one"), (OP_TEXT, b"two"), (OP_CLOSE, b"")]

    def test_continuation_without_start_rejected(self):
        with pytest.raises(ProtocolError):
            WSDecoder().feed(ws_encode(b"x", OP_CONT, fin=True))

    def test_new_message_inside_fragment_rejected(self):
        decoder = WSDecoder()
        decoder.feed(ws_encode(b"a", OP_TEXT, fin=False))
        with pytest.raises(ProtocolError):
            decoder.feed(ws_encode(b"b", OP_TEXT, fin=True))

    def test_fragmented_control_frame_rejected(self):
        with pytest.raises(ProtocolError):
            WSDecoder().feed(ws_encode(b"p", OP_PING, fin=False))

    def test_reserved_bits_rejected(self):
        frame = bytearray(ws_encode(b"x", OP_TEXT))
        frame[0] |= 0x40  # pretend an extension negotiated RSV1
        with pytest.raises(ProtocolError):
            WSDecoder().feed(bytes(frame))

    def test_oversized_frame_rejected(self):
        header = bytes([0x82, 127]) + struct.pack(
            "!Q", WSDecoder.MAX_MESSAGE + 1)
        with pytest.raises(ProtocolError):
            WSDecoder().feed(header)
