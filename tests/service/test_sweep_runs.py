"""Sweep runs through the service: fused execution over the shared
fleet, identical to an in-process sweep of the same spec."""

import numpy as np
import pytest

from repro.models import neurospora_network
from repro.service.fleet import SharedFleet
from repro.service.protocol import RunSpec
from repro.service.run_manager import RunManager, RunState
from repro.sweep import SweepSpec, run_sweep

PAYLOAD = {
    "model": "neurospora",
    "omega": 20,
    "config": {"n_simulations": 1, "t_end": 2.0, "sample_every": 0.5,
               "quantum": 1.0, "n_sim_workers": 2},
    "sweep": {"points": [{"translation": 0.3}, {"translation": 0.7}],
              "n_trajectories": 4, "seed": 5},
}


@pytest.fixture
def manager():
    fleet = SharedFleet(2, backend="threads").start()
    manager = RunManager(fleet)
    yield manager
    manager.close()
    fleet.close()


class TestServiceSweep:
    def test_sweep_run_completes_and_publishes(self, manager):
        handle = manager.submit(RunSpec.from_jsonable(PAYLOAD))
        assert handle.wait(60.0)
        assert handle.state == RunState.DONE, handle.error
        events = handle.events()
        kinds = [e["type"] for e in events]
        assert "sweep" in kinds and kinds[-1] == "end"
        sweep_event = next(e for e in events if e["type"] == "sweep")
        assert sweep_event["n_points"] == 2
        assert sweep_event["observables"] == ["M", "FC", "FN"]
        assert sweep_event["times"] == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert handle.status()["sweep_points"] == 2

    def test_fleet_sweep_matches_in_process_oracle(self, manager):
        handle = manager.submit(RunSpec.from_jsonable(PAYLOAD))
        assert handle.wait(60.0)
        assert handle.state == RunState.DONE, handle.error
        oracle = run_sweep(
            neurospora_network(omega=20),
            SweepSpec.from_dict(PAYLOAD["sweep"]),
            t_end=2.0, quantum=1.0, sample_every=0.5, n_sim_workers=2)
        assert np.array_equal(handle.sweep_result.mean, oracle.mean)
        assert np.array_equal(handle.sweep_result.variance,
                              oracle.variance)

    def test_cancel_drains_sweep_early(self, manager):
        slow = dict(PAYLOAD)
        slow["config"] = dict(PAYLOAD["config"],
                              t_end=500.0, quantum=0.5)
        slow["sweep"] = dict(PAYLOAD["sweep"], n_trajectories=8)
        handle = manager.submit(RunSpec.from_jsonable(slow))
        manager.cancel(handle.run_id)
        assert handle.wait(60.0)
        assert handle.state == RunState.CANCELLED
        # cuts past the cancellation point were never reached
        assert any(t is None
                   for e in handle.events() if e["type"] == "sweep"
                   for t in e["times"])
