"""SimTaskEmitter's priority backlog: bounded dispatch, re-keying,
stop-time cancellation and the completed/retired counter split."""

import pytest

from repro.ff.farm import Feedback
from repro.ff.node import EOS, GO_ON
from repro.sim.scheduler import SimTaskEmitter


class _Outbox:
    def __init__(self):
        self.sent = []

    def send(self, item):
        self.sent.append(item)

    def close(self):
        pass


class _Task:
    """Stand-in with the scheduling surface of SimulationTask."""

    def __init__(self, task_id, time=0.0, quanta_left=1):
        self.task_id = task_id
        self.time = time
        self.quanta_left = quanta_left

    @property
    def done(self):
        return self.quanta_left <= 0

    def advance(self):
        self.quanta_left -= 1
        self.time += 1.0
        return self

    def __repr__(self):
        return f"_Task({self.task_id}, t={self.time})"


def make_emitter(**kwargs):
    emitter = SimTaskEmitter(**kwargs)
    emitter._outbox = _Outbox()
    emitter.svc_init()
    return emitter


class TestPriorityWindow:
    def test_unbounded_dispatches_immediately(self):
        emitter = make_emitter()
        for i in range(5):
            assert emitter.svc(_Task(i)) is GO_ON
        assert [t.task_id for t in emitter._outbox.sent] == list(range(5))
        assert emitter.backlog_size() == 0
        assert emitter.quanta_dispatched == 5

    def test_bounded_window_holds_surplus_in_backlog(self):
        emitter = make_emitter(priority_window=2)
        for i in range(5):
            emitter.svc(_Task(i))
        assert len(emitter._outbox.sent) == 2
        assert emitter.backlog_size() == 3
        # each feedback completion frees a slot for the next queued task
        done = emitter._outbox.sent[0].advance()
        emitter.svc(Feedback(done))
        assert len(emitter._outbox.sent) == 3
        assert emitter.backlog_size() == 2

    def test_fifo_order_by_default(self):
        emitter = make_emitter(priority_window=1)
        for i in range(4):
            emitter.svc(_Task(i))
        order = [emitter._outbox.sent[0].task_id]
        while emitter.backlog_size():
            task = emitter._outbox.sent[-1].advance()
            emitter.svc(Feedback(task))
            order.append(emitter._outbox.sent[-1].task_id)
        assert order == [0, 1, 2, 3]

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SimTaskEmitter(priority_window=0)


class TestRepriority:
    def test_reorders_backlog(self):
        emitter = make_emitter(priority_window=1)
        times = [5.0, 1.0, 9.0, 3.0]
        for i, t in enumerate(times):
            emitter.svc(_Task(i, time=t, quanta_left=2))
        assert emitter._outbox.sent[0].time == 5.0  # first in, dispatched
        moved = emitter.repriority(lambda task: task.time)
        assert moved > 0
        # drain: completions release backlog slots in laggards-first order
        drained = []
        while emitter.backlog_size():
            task = emitter._outbox.sent[-1]
            task.quanta_left = 0
            emitter.svc(Feedback(task))
            drained.append(emitter._outbox.sent[-1].time)
        assert drained == sorted(drained) == [1.0, 3.0, 9.0]

    def test_noop_when_order_unchanged(self):
        emitter = make_emitter(priority_window=1)
        for i in range(3):
            emitter.svc(_Task(i, time=float(i)))
        assert emitter.repriority(lambda task: task.time) == 0

    def test_empty_backlog_moves_nothing(self):
        emitter = make_emitter()
        assert emitter.repriority(lambda task: task.time) == 0

    def test_on_repriority_hook_fires(self):
        observed = []
        emitter = make_emitter(priority_window=1,
                               on_repriority=observed.append)
        for i, t in enumerate([4.0, 2.0, 8.0]):
            emitter.svc(_Task(i, time=t))
        emitter.repriority(lambda task: -task.time)
        assert observed and observed[0] > 0


class TestStopCancellation:
    def test_stop_cancels_backlog_without_dispatch(self):
        flag = {"stop": False}
        emitter = make_emitter(priority_window=1,
                               stop_requested=lambda: flag["stop"])
        for i in range(4):
            emitter.svc(_Task(i, quanta_left=3))
        assert len(emitter._outbox.sent) == 1
        assert emitter.backlog_size() == 3
        flag["stop"] = True
        # the outstanding task comes back; it and the whole backlog retire
        out = emitter.svc(Feedback(emitter._outbox.sent[0].advance()))
        assert emitter.backlog_size() == 0
        assert len(emitter._outbox.sent) == 1  # no further dispatches
        assert emitter.tasks_retired == 4
        assert emitter.tasks_completed == 0
        assert emitter.quanta_dispatched == 1
        assert emitter.in_flight == 0
        assert out is GO_ON  # upstream not done yet

    def test_counters_split_completed_vs_retired(self):
        flag = {"stop": False}
        emitter = make_emitter(stop_requested=lambda: flag["stop"])
        finished = _Task(0, quanta_left=0)
        emitter.svc(_Task(0, quanta_left=1))
        emitter.svc(Feedback(finished))
        assert (emitter.tasks_completed, emitter.tasks_retired) == (1, 0)
        emitter.svc(_Task(1, quanta_left=5))
        flag["stop"] = True
        emitter.svc(Feedback(_Task(1, quanta_left=4)))
        assert (emitter.tasks_completed, emitter.tasks_retired) == (1, 1)

    def test_eos_when_upstream_done_and_drained(self):
        flag = {"stop": False}
        emitter = make_emitter(priority_window=1,
                               stop_requested=lambda: flag["stop"])
        for i in range(3):
            emitter.svc(_Task(i, quanta_left=2))
        emitter.upstream_done = True
        flag["stop"] = True
        out = emitter.svc(Feedback(emitter._outbox.sent[0].advance()))
        assert out is EOS
        assert emitter.in_flight == 0


class TestSvcInitReset:
    def test_reset_clears_backlog_and_counters(self):
        emitter = make_emitter(priority_window=1)
        for i in range(3):
            emitter.svc(_Task(i))
        emitter._outbox = _Outbox()
        emitter.svc_init()
        assert emitter.backlog_size() == 0
        assert emitter.quanta_dispatched == 0
        assert emitter.tasks_completed == emitter.tasks_retired == 0
        emitter.svc(_Task(9))
        assert [t.task_id for t in emitter._outbox.sent] == [9]
