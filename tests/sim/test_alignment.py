"""Trajectory alignment: out-of-order quantum results -> in-order cuts."""

import random

import pytest

from repro.ff.node import Node
from repro.sim.alignment import TrajectoryAligner
from repro.sim.task import QuantumResult
from repro.sim.trajectory import Cut


class _Capture:
    """Binds an outbox so the aligner can be driven directly."""

    def __init__(self, node: Node):
        self.items = []
        node._outbox = self

    def send(self, item):
        self.items.append(item)


def result(task_id, samples, done=False):
    return QuantumResult(task_id=task_id,
                         samples=[(g, float(g), (float(v),))
                                  for g, v in samples],
                         time=0.0, steps=0, done=done)


class TestAlignment:
    def test_cut_emitted_when_all_reported(self):
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 10)]))
        assert out.items == []
        aligner.svc(result(1, [(0, 20)]))
        assert len(out.items) == 1
        cut = out.items[0]
        assert isinstance(cut, Cut)
        assert cut.grid_index == 0
        assert cut.values == [(10.0,), (20.0,)]

    def test_values_ordered_by_task_id(self):
        aligner = TrajectoryAligner(3)
        out = _Capture(aligner)
        aligner.svc(result(2, [(0, 2)]))
        aligner.svc(result(0, [(0, 0)]))
        aligner.svc(result(1, [(0, 1)]))
        assert out.items[0].values == [(0.0,), (1.0,), (2.0,)]

    def test_cuts_in_grid_order_despite_skew(self):
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        # trajectory 0 races ahead three grid points
        aligner.svc(result(0, [(0, 1), (1, 1), (2, 1)]))
        assert out.items == []
        aligner.svc(result(1, [(0, 2), (1, 2)]))
        assert [c.grid_index for c in out.items] == [0, 1]
        aligner.svc(result(1, [(2, 2)]))
        assert [c.grid_index for c in out.items] == [0, 1, 2]

    def test_random_interleaving_property(self):
        """Any interleaving of per-trajectory streams yields the full
        in-order cut sequence."""
        rng = random.Random(5)
        n_traj, n_grid = 4, 12
        streams = {
            t: [(g, t * 100 + g) for g in range(n_grid)]
            for t in range(n_traj)
        }
        aligner = TrajectoryAligner(n_traj)
        out = _Capture(aligner)
        pending = {t: 0 for t in range(n_traj)}
        while any(v < n_grid for v in pending.values()):
            t = rng.choice([k for k, v in pending.items() if v < n_grid])
            take = rng.randint(1, min(3, n_grid - pending[t]))
            chunk = streams[t][pending[t]:pending[t] + take]
            pending[t] += take
            aligner.svc(result(t, chunk))
        assert [c.grid_index for c in out.items] == list(range(n_grid))
        for cut in out.items:
            assert cut.values == [
                (float(t * 100 + cut.grid_index),) for t in range(n_traj)]

    def test_duplicate_report_rejected(self):
        aligner = TrajectoryAligner(2)
        _Capture(aligner)
        aligner.svc(result(0, [(0, 1)]))
        with pytest.raises(ValueError, match="twice"):
            aligner.svc(result(0, [(0, 1)]))

    def test_report_after_emit_rejected(self):
        aligner = TrajectoryAligner(1)
        _Capture(aligner)
        aligner.svc(result(0, [(0, 1)]))  # cut 0 emitted (n=1)
        with pytest.raises(ValueError, match="already emitted"):
            aligner.svc(result(0, [(0, 2)]))

    def test_type_check(self):
        aligner = TrajectoryAligner(1)
        with pytest.raises(TypeError):
            aligner.svc("not a result")

    def test_partial_tail_dropped_at_end(self):
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 1), (1, 1)]))
        aligner.svc(result(1, [(0, 2)]))
        aligner.svc_end()
        assert [c.grid_index for c in out.items] == [0]
        assert aligner.max_buffered >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryAligner(0)
