"""Trajectory alignment: out-of-order quantum results -> in-order cuts.

Parametrised over both aligners: the columnar :class:`TrajectoryAligner`
(emits :class:`CutBlock` batches) and the scalar oracle
:class:`ScalarTrajectoryAligner` (emits one :class:`Cut` per grid
point).  The capture helper flattens blocks so every test asserts the
same per-cut sequence against both implementations.
"""

import random

import pytest

from repro.ff.node import Node
from repro.sim.alignment import ScalarTrajectoryAligner, TrajectoryAligner
from repro.sim.task import QuantumResult
from repro.sim.trajectory import Cut, CutBlock, iter_cuts

ALIGNERS = (TrajectoryAligner, ScalarTrajectoryAligner)


class _Capture:
    """Binds an outbox so the aligner can be driven directly."""

    def __init__(self, node: Node):
        self.items = []
        node._outbox = self

    def send(self, item):
        self.items.append(item)

    @property
    def cuts(self):
        """Emissions flattened to cuts (CutBlock -> constituent cuts)."""
        return list(iter_cuts(self.items))


def result(task_id, samples, done=False):
    return QuantumResult(task_id=task_id,
                         samples=[(g, float(g), (float(v),))
                                  for g, v in samples],
                         time=0.0, steps=0, done=done)


def col_result(task_id, g0, values_2d, done=False):
    """Columnar wire-format result: grids g0..g0+n-1 by construction."""
    import numpy as np
    vals = np.asarray(values_2d, dtype=float)
    times = np.array([float(g) for g in range(g0, g0 + len(vals))])
    return QuantumResult(task_id, None, time=0.0, steps=0, done=done,
                         grid_start=g0, times=times, values=vals)


@pytest.mark.parametrize("aligner_cls", ALIGNERS)
class TestAlignment:
    def test_cut_emitted_when_all_reported(self, aligner_cls):
        aligner = aligner_cls(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 10)]))
        assert out.items == []
        aligner.svc(result(1, [(0, 20)]))
        assert len(out.cuts) == 1
        cut = out.cuts[0]
        assert isinstance(cut, Cut)
        assert cut.grid_index == 0
        assert cut.values == [(10.0,), (20.0,)]

    def test_values_ordered_by_task_id(self, aligner_cls):
        aligner = aligner_cls(3)
        out = _Capture(aligner)
        aligner.svc(result(2, [(0, 2)]))
        aligner.svc(result(0, [(0, 0)]))
        aligner.svc(result(1, [(0, 1)]))
        assert out.cuts[0].values == [(0.0,), (1.0,), (2.0,)]

    def test_cuts_in_grid_order_despite_skew(self, aligner_cls):
        aligner = aligner_cls(2)
        out = _Capture(aligner)
        # trajectory 0 races ahead three grid points
        aligner.svc(result(0, [(0, 1), (1, 1), (2, 1)]))
        assert out.items == []
        aligner.svc(result(1, [(0, 2), (1, 2)]))
        assert [c.grid_index for c in out.cuts] == [0, 1]
        aligner.svc(result(1, [(2, 2)]))
        assert [c.grid_index for c in out.cuts] == [0, 1, 2]

    def test_random_interleaving_property(self, aligner_cls):
        """Any interleaving of per-trajectory streams yields the full
        in-order cut sequence."""
        rng = random.Random(5)
        n_traj, n_grid = 4, 12
        streams = {
            t: [(g, t * 100 + g) for g in range(n_grid)]
            for t in range(n_traj)
        }
        aligner = aligner_cls(n_traj)
        out = _Capture(aligner)
        pending = {t: 0 for t in range(n_traj)}
        while any(v < n_grid for v in pending.values()):
            t = rng.choice([k for k, v in pending.items() if v < n_grid])
            take = rng.randint(1, min(3, n_grid - pending[t]))
            chunk = streams[t][pending[t]:pending[t] + take]
            pending[t] += take
            aligner.svc(result(t, chunk))
        assert [c.grid_index for c in out.cuts] == list(range(n_grid))
        for cut in out.cuts:
            assert cut.values == [
                (float(t * 100 + cut.grid_index),) for t in range(n_traj)]

    def test_duplicate_report_rejected(self, aligner_cls):
        aligner = aligner_cls(2)
        _Capture(aligner)
        aligner.svc(result(0, [(0, 1)]))
        with pytest.raises(ValueError, match="twice"):
            aligner.svc(result(0, [(0, 1)]))

    def test_report_after_emit_rejected(self, aligner_cls):
        aligner = aligner_cls(1)
        _Capture(aligner)
        aligner.svc(result(0, [(0, 1)]))  # cut 0 emitted (n=1)
        with pytest.raises(ValueError, match="already emitted"):
            aligner.svc(result(0, [(0, 2)]))

    def test_type_check(self, aligner_cls):
        aligner = aligner_cls(1)
        with pytest.raises(TypeError):
            aligner.svc("not a result")

    def test_partial_tail_dropped_at_end(self, aligner_cls):
        aligner = aligner_cls(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 1), (1, 1)]))
        aligner.svc(result(1, [(0, 2)]))
        aligner.svc_end()
        assert [c.grid_index for c in out.cuts] == [0]
        assert aligner.max_buffered >= 1

    def test_validation(self, aligner_cls):
        with pytest.raises(ValueError):
            aligner_cls(0)


class TestColumnarBatching:
    """CutBlock-specific behaviour of the columnar aligner."""

    def test_contiguous_ready_cuts_emit_one_block(self):
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 1), (1, 1), (2, 1)]))
        aligner.svc(result(1, [(0, 2), (1, 2), (2, 2)]))
        assert len(out.items) == 1
        block = out.items[0]
        assert isinstance(block, CutBlock)
        assert block.grid_start == 0
        assert len(block) == 3
        assert block.data.shape == (3, 2, 1)
        assert aligner.blocks_emitted == 1
        assert aligner.cuts_emitted == 3

    def test_block_cuts_are_views(self):
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        aligner.svc(result(0, [(0, 10), (1, 11)]))
        aligner.svc(result(1, [(0, 20), (1, 21)]))
        block = out.items[0]
        assert [c.values for c in block] == [
            [(10.0,), (20.0,)], [(11.0,), (21.0,)]]

    def test_scalar_and_columnar_agree_on_random_stream(self):
        """Full equivalence under a random interleaving: identical cut
        sequences, identical max_buffered."""
        rng = random.Random(17)
        n_traj, n_grid = 5, 20
        chunks = []
        pending = {t: 0 for t in range(n_traj)}
        while any(v < n_grid for v in pending.values()):
            t = rng.choice([k for k, v in pending.items() if v < n_grid])
            take = rng.randint(1, min(4, n_grid - pending[t]))
            chunk = [(g, t * 1000 + g * 7)
                     for g in range(pending[t], pending[t] + take)]
            pending[t] += take
            chunks.append((t, chunk))

        columnar = TrajectoryAligner(n_traj)
        scalar = ScalarTrajectoryAligner(n_traj)
        out_c, out_s = _Capture(columnar), _Capture(scalar)
        for t, chunk in chunks:
            columnar.svc(result(t, chunk))
            scalar.svc(result(t, chunk))
        assert len(out_c.cuts) == len(out_s.cuts) == n_grid
        for c, s in zip(out_c.cuts, out_s.cuts):
            assert c.grid_index == s.grid_index
            assert c.time == s.time
            assert c.values == s.values
        assert columnar.max_buffered == scalar.max_buffered
        assert columnar.cuts_emitted == scalar.cuts_emitted

    def test_fast_regime_duplicate_detected_after_demote(self):
        """In-order columnar results keep the aligner in the scalar fast
        regime (no seen matrix); a later duplicate must still be caught
        by the reconstructed one."""
        aligner = TrajectoryAligner(2)
        _Capture(aligner)
        aligner.svc(col_result(0, 0, [[1.0], [2.0]]))   # grids 0,1
        aligner.svc(col_result(1, 0, [[9.0]]))          # grid 0 -> emit 0
        assert aligner._fast
        with pytest.raises(ValueError, match="grid point 1 twice"):
            aligner.svc(col_result(0, 1, [[5.0]]))
        assert not aligner._fast

    def test_fast_regime_stale_detected_after_demote(self):
        aligner = TrajectoryAligner(1)
        out = _Capture(aligner)
        aligner.svc(col_result(0, 0, [[1.0], [2.0]]))   # emits 0,1
        assert len(out.cuts) == 2
        with pytest.raises(ValueError, match="already emitted"):
            aligner.svc(col_result(0, 0, [[1.0]]))

    def test_fast_prefix_then_gap_matches_oracle(self):
        """A stream that is in-order long enough to stay in the fast
        regime, then deviates (a task jumps ahead leaving a gap), must
        produce exactly the oracle's cuts and accounting."""
        spec = [
            (0, 0, [10, 11]), (1, 0, [20, 21]), (2, 0, [30, 31]),
            (0, 2, [12, 13]),
            (1, 4, [24]),            # gap: task 1 skips grids 2,3
            (2, 2, [32, 33]),
            (1, 2, [22, 23]),        # fills the gap
            (0, 4, [14]), (2, 4, [34]),
        ]

        def feed(aligner):
            out = _Capture(aligner)
            for task_id, g0, vals in spec:
                aligner.svc(col_result(task_id, g0,
                                       [[float(v)] for v in vals]))
            return out

        out_c = feed(TrajectoryAligner(3))
        out_s = feed(ScalarTrajectoryAligner(3))
        assert len(out_c.cuts) == len(out_s.cuts) == 5
        for c, s in zip(out_c.cuts, out_s.cuts):
            assert c.grid_index == s.grid_index
            assert c.values == s.values

    def test_columnar_results_feed_without_row_hop(self):
        """Array-carrying QuantumResults (the BatchSimulationTask wire
        format) land in the cut matrix without materialising samples."""
        import numpy as np
        aligner = TrajectoryAligner(2)
        out = _Capture(aligner)
        for task_id in range(2):
            res = QuantumResult(
                task_id, None, time=1.0, steps=3,
                grid_start=0,
                times=np.array([0.0, 0.5, 1.0]),
                values=np.array([[task_id + 0.0], [task_id + 0.5],
                                 [task_id + 1.0]]))
            assert res._samples is None
            aligner.svc(res)
            assert res._samples is None  # never materialised
        assert len(out.items) == 1
        assert [c.values for c in out.items[0]] == [
            [(0.0,), (1.0,)], [(0.5,), (1.5,)], [(1.0,), (2.0,)]]
