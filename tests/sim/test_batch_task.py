"""Batched simulation tasks: lockstep blocks through the task protocol."""

import pickle

import pytest

from repro.sim.task import BatchSimulationTask, make_batch_tasks, make_tasks
from repro.cwc.batch import BatchFlatSimulator


class TestBatchQuantumStepping:
    def test_samples_on_global_grid(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 4, t_end=4.0, quantum=1.5,
                                sample_every=1.0, seed=0)[0]
        per_member = {i: [] for i in task.task_ids}
        while not task.done:
            for result in task.run_quantum():
                per_member[result.task_id].extend(result.samples)
        for samples in per_member.values():
            assert [t for _g, t, _v in samples] == [0.0, 1.0, 2.0, 3.0, 4.0]
            assert [g for g, _t, _v in samples] == [0, 1, 2, 3, 4]

    def test_no_duplicate_grid_points(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 3, t_end=10.0, quantum=0.7,
                                sample_every=0.5, seed=1)[0]
        seen = {i: set() for i in task.task_ids}
        while not task.done:
            for result in task.run_quantum():
                for g, _t, _v in result.samples:
                    assert g not in seen[result.task_id]
                    seen[result.task_id].add(g)
        for got in seen.values():
            assert got == set(range(task.n_samples_total))

    def test_done_task_yields_empty(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 2, t_end=1.0, quantum=2.0,
                                sample_every=1.0, seed=0)[0]
        task.run_quantum()
        assert task.done
        for result in task.run_quantum():
            assert result.done and result.samples == []

    def test_samples_are_plain_floats(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 2, t_end=1.0, quantum=1.0,
                                sample_every=0.5, seed=2)[0]
        for result in task.run_quantum():
            for _g, t, values in result.samples:
                assert type(t) is float
                assert all(type(v) is float for v in values)

    def test_validation(self, neurospora_small):
        with pytest.raises(ValueError):
            make_batch_tasks(neurospora_small, 4, t_end=0, quantum=1,
                             sample_every=1)
        with pytest.raises(ValueError):
            make_batch_tasks(neurospora_small, 4, t_end=1, quantum=1,
                             sample_every=1, batch_size=0)
        with pytest.raises(ValueError):
            BatchSimulationTask(
                (0, 1, 2), BatchFlatSimulator(neurospora_small, 2),
                t_end=1.0, quantum=1.0, sample_every=1.0)


class TestMakeBatchTasks:
    def test_blocking(self, neurospora_small):
        tasks = make_batch_tasks(neurospora_small, 10, 1.0, 1.0, 1.0,
                                 batch_size=4)
        assert [t.n for t in tasks] == [4, 4, 2]
        assert [t.task_ids for t in tasks] == [
            (0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]

    def test_engine_batch_dispatch(self, neurospora_small):
        tasks = make_tasks(neurospora_small, 10, 1.0, 1.0, 1.0,
                           engine="batch", batch_size=4)
        assert all(isinstance(t, BatchSimulationTask) for t in tasks)
        assert sum(t.n for t in tasks) == 10

    def test_blocks_are_independent(self, neurospora_small):
        tasks = make_batch_tasks(neurospora_small, 8, 2.0, 2.0, 2.0,
                                 seed=3, batch_size=4)
        finals = []
        for task in tasks:
            while not task.done:
                task.run_quantum()
            finals.append(task.batch.counts.copy())
        assert not (finals[0] == finals[1]).all()

    def test_reproducible(self, neurospora_small):
        def run(seed):
            task = make_batch_tasks(neurospora_small, 4, 2.0, 1.0, 1.0,
                                    seed=seed)[0]
            out = []
            while not task.done:
                out.extend((r.task_id, tuple(r.samples))
                           for r in task.run_quantum())
            return out

        assert run(42) == run(42)

    def test_task_is_picklable(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 3, 4.0, 1.0, 1.0,
                                seed=5)[0]
        task.run_quantum()
        clone = pickle.loads(pickle.dumps(task))
        original = [r.samples for r in task.run_quantum()]
        copied = [r.samples for r in clone.run_quantum()]
        assert original == copied

    def test_steps_accounting(self, neurospora_small):
        task = make_batch_tasks(neurospora_small, 4, 2.0, 2.0, 1.0,
                                seed=6)[0]
        results = task.run_quantum()
        assert task.steps == sum(int(s) for s in task.steps_by_trajectory)
        assert task.steps == sum(r.steps for r in results)
