"""The simulation farm end to end: generator -> engines -> aligner."""

import pytest

from repro.ff import Farm, Pipeline, run
from repro.sim.alignment import TrajectoryAligner
from repro.sim.engine import SimEngineNode
from repro.sim.scheduler import SimTaskEmitter, TaskGenerator
from repro.sim.trajectory import Cut, assemble_trajectories, iter_cuts
from repro.cwc.network import FlatSimulator

BACKENDS = ("sequential", "threads")


def sim_farm(n_simulations, n_workers=3, stop=None):
    return Farm(
        [SimEngineNode(name=f"se{i}") for i in range(n_workers)],
        emitter=SimTaskEmitter(stop_requested=stop),
        collector=TrajectoryAligner(n_simulations),
        feedback=True)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSimulationFarm:
    def test_produces_all_cuts(self, neurospora_small, backend):
        n, t_end, dt = 5, 6.0, 0.5
        gen = TaskGenerator(neurospora_small, n, t_end, quantum=1.5,
                            sample_every=dt, seed=0)
        cuts = list(iter_cuts(run(Pipeline([gen, sim_farm(n)]),
                                  backend=backend)))
        assert [c.grid_index for c in cuts] == list(range(13))
        assert all(isinstance(c, Cut) for c in cuts)
        assert all(c.n_trajectories == n for c in cuts)

    def test_cut_values_match_direct_simulation(self, neurospora_small,
                                                backend):
        """The farmed, quantum-sliced, aligned output is bit-identical to
        running each trajectory directly with the same seed."""
        n, t_end, dt, seed = 4, 5.0, 1.0, 7
        gen = TaskGenerator(neurospora_small, n, t_end, quantum=2.0,
                            sample_every=dt, seed=seed)
        cuts = run(Pipeline([gen, sim_farm(n)]), backend=backend)
        trajectories = assemble_trajectories(cuts, n)
        for task_id, trajectory in enumerate(trajectories):
            direct = FlatSimulator(neurospora_small,
                                   seed=seed + task_id).run(t_end, dt)
            assert trajectory.samples == direct.samples
            assert trajectory.times == direct.times

    def test_engines_share_load(self, neurospora_small, backend):
        n = 8
        engines = [SimEngineNode(name=f"se{i}") for i in range(4)]
        farm = Farm(engines, emitter=SimTaskEmitter(),
                    collector=TrajectoryAligner(n), feedback=True)
        gen = TaskGenerator(neurospora_small, n, 4.0, quantum=0.5,
                            sample_every=1.0, seed=1)
        run(Pipeline([gen, farm]), backend=backend)
        total = sum(e.quanta_executed for e in engines)
        assert total == n * 8  # 8 quanta per trajectory
        assert sum(1 for e in engines if e.quanta_executed > 0) >= 2

    def test_steering_stop(self, neurospora_small, backend):
        flag = {"stop": False}
        emitter = SimTaskEmitter(stop_requested=lambda: flag["stop"])
        n = 4

        class StopAfterFirstCut(TrajectoryAligner):
            def svc(self, result):
                out = super().svc(result)
                if self.cuts_emitted >= 1:
                    flag["stop"] = True
                return out

        farm = Farm([SimEngineNode(name=f"se{i}") for i in range(2)],
                    emitter=emitter,
                    collector=StopAfterFirstCut(n), feedback=True)
        gen = TaskGenerator(neurospora_small, n, 1000.0, quantum=0.5,
                            sample_every=0.5, seed=0)
        cuts = run(Pipeline([gen, farm]), backend=backend)
        # stopped long before the 2001 cuts a full run would produce
        assert 1 <= len(cuts) < 100


class TestAssembleTrajectories:
    def test_transpose_roundtrip(self):
        cuts = [Cut(grid_index=g, time=float(g),
                    values=[(g * 10 + t,) for t in range(3)])
                for g in range(5)]
        trajectories = assemble_trajectories(cuts, 3)
        assert len(trajectories) == 3
        assert trajectories[1].samples == [(g * 10 + 1,) for g in range(5)]
        assert trajectories[2].times == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_sorted_even_if_shuffled(self):
        cuts = [Cut(grid_index=g, time=float(g), values=[(g,)])
                for g in (2, 0, 1)]
        trajectories = assemble_trajectories(cuts, 1)
        assert trajectories[0].samples == [(0,), (1,), (2,)]

    def test_cardinality_mismatch(self):
        cuts = [Cut(grid_index=0, time=0.0, values=[(1,)])]
        with pytest.raises(ValueError):
            assemble_trajectories(cuts, 2)
