"""Lazy pickling of results and cuts.

The columnar wire format only pays off if serialisation preserves it: an
array-form :class:`QuantumResult` must cross process and socket
boundaries as two arrays plus scalars, never materialising the
per-sample Python tuples, and a lazily derived second view must be
dropped rather than shipped twice.
"""

import pickle

import numpy as np
import pytest

from repro.distributed.message import (
    decode_frame,
    encode_frame_oob,
    encode_frame_segments,
    segments_nbytes,
)
from repro.sim.task import QuantumResult
from repro.sim.trajectory import Cut, CutBlock


def columnar_result(n=64, n_obs=3, task_id=5, grid_start=7):
    times = np.arange(n, dtype=float) * 0.5
    values = np.arange(n * n_obs, dtype=float).reshape(n, n_obs)
    return QuantumResult(task_id, None, time=32.0, steps=400, done=False,
                         grid_start=grid_start, times=times, values=values)


class TestQuantumResultPickle:
    def test_array_form_roundtrip_stays_lazy(self):
        result = columnar_result()
        blob = pickle.dumps(result)
        # pickling must not have materialised the row view...
        assert result._samples is None
        clone = pickle.loads(blob)
        # ...and neither has the clone
        assert clone._samples is None
        assert clone.grid_start == result.grid_start
        assert clone.task_id == result.task_id
        assert clone.time == result.time
        assert clone.steps == result.steps
        assert clone.done == result.done
        g, t, v = clone.columnar()
        g0, t0, v0 = result.columnar()
        assert np.array_equal(g, g0)
        assert np.array_equal(t, t0)
        assert np.array_equal(v, v0)

    def test_row_view_still_derivable_after_roundtrip(self):
        result = columnar_result(n=4, n_obs=2)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.samples == result.samples

    def test_row_form_roundtrip(self):
        samples = [(0, 0.0, (1.0, 2.0)), (1, 0.5, (3.0, 4.0))]
        result = QuantumResult(2, samples, time=1.0, steps=10, done=True)
        clone = pickle.loads(pickle.dumps(result))
        assert clone._values is None  # stays in row form
        assert clone.samples == samples
        assert clone.done and clone.steps == 10

    def test_row_form_with_derived_arrays_ships_rows_once(self):
        """A row result whose columnar view was materialised must ship
        the authoritative rows only (grid_start stays None)."""
        samples = [(3, 1.5, (9.0,)), (4, 2.0, (8.0,))]
        result = QuantumResult(1, samples, time=2.0, steps=5, done=False)
        result.columnar()  # derive the arrays
        clone = pickle.loads(pickle.dumps(result))
        assert clone._values is None
        assert clone.samples == samples

    def test_empty_result_roundtrip(self):
        result = QuantumResult(3, [], time=4.0, steps=7, done=True)
        clone = pickle.loads(pickle.dumps(result))
        assert len(clone) == 0 and clone.done

    def test_arrays_go_out_of_band(self):
        """Under protocol 5 the value matrix leaves as a raw buffer, not
        through the pickle stream."""
        result = columnar_result(n=256, n_obs=4)
        segments = encode_frame_segments(result)
        control_bytes = segments_nbytes(segments[:2])
        total = segments_nbytes(segments)
        assert total - control_bytes >= result._values.nbytes
        assert control_bytes < result._values.nbytes / 4

    def test_oob_frame_roundtrip(self):
        result = columnar_result(n=128, n_obs=2)
        clone, rest = decode_frame(encode_frame_oob(result))
        assert rest == b""
        assert clone._samples is None
        assert np.array_equal(clone._values, result._values)
        assert np.array_equal(clone._times, result._times)

    def test_release_without_segment_is_noop(self):
        result = columnar_result(n=2)
        result.release()
        result.release()

    def test_release_releases_attached_segment_once(self):
        class FakeSegment:
            released = 0

            def release(self):
                self.released += 1

        segment = FakeSegment()
        result = columnar_result(n=2)
        result.attach_segment(segment)
        result.release()
        result.release()
        assert segment.released == 1

    def test_segment_not_pickled(self):
        result = columnar_result(n=2)
        result.attach_segment(object())  # unpicklable on purpose
        clone = pickle.loads(pickle.dumps(result))
        assert clone._segment is None


class TestCutPickle:
    def test_array_form_stays_lazy(self):
        cut = Cut(4, 2.0, data=np.arange(12, dtype=float).reshape(4, 3))
        blob = pickle.dumps(cut)
        assert cut._values is None
        clone = pickle.loads(blob)
        assert clone._values is None
        assert clone == cut

    def test_both_views_ship_once(self):
        cut = Cut(1, 0.5, data=np.ones((8, 2)))
        single = len(pickle.dumps(cut))
        cut.values  # materialise the tuple view
        assert len(pickle.dumps(cut)) == single

    def test_values_form_roundtrip(self):
        cut = Cut(0, 0.0, values=[(1.0, 2.0), (3.0, 4.0)])
        clone = pickle.loads(pickle.dumps(cut))
        assert clone._data is None
        assert clone.values == [(1.0, 2.0), (3.0, 4.0)]

    def test_cut_block_roundtrip(self):
        block = CutBlock(3, np.array([1.5, 2.0]),
                         np.arange(12, dtype=float).reshape(2, 3, 2))
        clone = pickle.loads(pickle.dumps(block))
        assert clone.grid_start == 3
        assert np.array_equal(clone.times, block.times)
        assert np.array_equal(clone.data, block.data)


class TestTaskStateOverOobFrames:
    """The cluster's replay guarantee must survive the zero-copy format:
    a task decoded from an out-of-band frame continues bit-identically,
    which requires its state arrays to come back *writable*."""

    @pytest.fixture
    def batch_task(self, neurospora_small):
        from repro.sim.task import make_batch_tasks
        return make_batch_tasks(neurospora_small, 8, 6.0, 2.0, 0.5,
                                seed=3, batch_size=8)[0]

    def test_batch_task_roundtrips_and_continues(self, batch_task):
        batch_task.run_quantum()  # mid-run state is the hard case
        clone, rest = decode_frame(encode_frame_oob(batch_task))
        assert rest == b""
        expected = batch_task.run_quantum()
        actual = clone.run_quantum()  # mutates decoded arrays in place
        for a, b in zip(actual, expected):
            ga, ta, va = a.columnar()
            gb, tb, vb = b.columnar()
            assert np.array_equal(ga, gb)
            assert np.array_equal(ta, tb)
            assert np.array_equal(va, vb)
