"""Simulation tasks and quantum stepping."""

import pickle

import pytest

from repro.sim.task import SimulationTask, make_tasks
from repro.cwc.network import FlatSimulator, ReactionNetwork


class TestQuantumStepping:
    def test_samples_on_global_grid(self, neurospora_small):
        tasks = make_tasks(neurospora_small, 1, t_end=4.0, quantum=1.5,
                           sample_every=1.0, seed=0)
        task = tasks[0]
        all_samples = []
        while not task.done:
            all_samples.extend(task.run_quantum().samples)
        times = [t for _g, t, _v in all_samples]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
        indices = [g for g, _t, _v in all_samples]
        assert indices == [0, 1, 2, 3, 4]

    def test_no_duplicate_grid_points(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, t_end=10.0, quantum=0.7,
                          sample_every=0.5, seed=1)[0]
        seen = set()
        while not task.done:
            for g, _t, _v in task.run_quantum().samples:
                assert g not in seen
                seen.add(g)
        assert seen == set(range(task.n_samples_total))

    def test_quantum_larger_than_run(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, t_end=2.0, quantum=100.0,
                          sample_every=1.0, seed=0)[0]
        result = task.run_quantum()
        assert result.done
        assert len(result.samples) == 3

    def test_done_task_yields_empty(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, t_end=1.0, quantum=2.0,
                          sample_every=1.0, seed=0)[0]
        task.run_quantum()
        assert task.done
        follow_up = task.run_quantum()
        assert follow_up.done and follow_up.samples == []

    def test_equivalent_to_plain_run(self, neurospora_small):
        """Quantum-sliced sampling is bit-identical to a direct run with
        the same seed, when quantum boundaries lie on the sampling grid
        (off-grid boundaries are still statistically exact, but resample
        the exponential clock at different points)."""
        direct = FlatSimulator(neurospora_small, seed=3).run(6.0, 1.0)
        task = make_tasks(neurospora_small, 1, t_end=6.0, quantum=2.0,
                          sample_every=1.0, seed=3)[0]
        sliced = []
        while not task.done:
            sliced.extend(v for _g, _t, v in task.run_quantum().samples)
        assert sliced == direct.samples

    def test_validation(self, neurospora_small):
        with pytest.raises(ValueError):
            make_tasks(neurospora_small, 1, t_end=0, quantum=1,
                       sample_every=1)


class TestMakeTasks:
    def test_seeds_derived(self, neurospora_small):
        tasks = make_tasks(neurospora_small, 3, 1.0, 1.0, 1.0, seed=100)
        results = set()
        for task in tasks:
            task.run_quantum()
            results.add(tuple(task.simulator.counts.items()))
        assert len(results) > 1  # trajectories are independent

    def test_reproducible(self, neurospora_small):
        def final_counts(seed):
            task = make_tasks(neurospora_small, 1, 3.0, 1.0, 1.0,
                              seed=seed)[0]
            while not task.done:
                task.run_quantum()
            return dict(task.simulator.counts)

        assert final_counts(42) == final_counts(42)

    def test_engine_selection(self, neurospora_small, neurospora_cwc_small):
        from repro.cwc.gillespie import CWCSimulator
        flat = make_tasks(neurospora_small, 1, 1.0, 1.0, 1.0)[0]
        assert isinstance(flat.simulator, FlatSimulator)
        cwc = make_tasks(neurospora_cwc_small, 1, 1.0, 1.0, 1.0,
                         engine="cwc")[0]
        assert isinstance(cwc.simulator, CWCSimulator)
        auto = make_tasks(neurospora_cwc_small, 1, 1.0, 1.0, 1.0)[0]
        assert isinstance(auto.simulator, CWCSimulator)

    def test_flat_engine_rejects_network_mismatch(self, neurospora_small):
        with pytest.raises(ValueError):
            make_tasks(neurospora_small, 1, 1.0, 1.0, 1.0, engine="cwc")

    def test_task_count(self, neurospora_small):
        assert len(make_tasks(neurospora_small, 7, 1.0, 1.0, 1.0)) == 7

    def test_task_is_picklable(self, neurospora_small):
        task = make_tasks(neurospora_small, 1, 4.0, 1.0, 1.0, seed=5)[0]
        task.run_quantum()
        clone = pickle.loads(pickle.dumps(task))
        # the clone continues identically to the original
        original = task.run_quantum()
        copied = clone.run_quantum()
        assert original.samples == copied.samples

    def test_cwc_task_is_picklable(self, neurospora_cwc_small):
        task = make_tasks(neurospora_cwc_small, 1, 2.0, 1.0, 1.0,
                          engine="cwc", seed=5)[0]
        task.run_quantum()
        clone = pickle.loads(pickle.dumps(task))
        assert clone.run_quantum().samples == task.run_quantum().samples
