"""The fused sweep plane's bit-identity contract.

A P-point fused block -- per-row rates, per-point RNG streams, coalesced
results -- must reproduce, per point, the exact trajectories of the P
solo ``engine="batch"`` runs it replaces: same sample values, same
member clocks, same step counters, byte for byte.  Verified across the
inline numpy path, the un-jitted :class:`PythonKernel` proxy (the numba
algorithm without the JIT) and, where installed, the real numba kernel.
"""

import numpy as np
import pytest

from repro.cwc.batch import BatchFlatSimulator, compile_network
from repro.cwc.kernels import kernel_available
from repro.pipeline.builder import run_workflow
from repro.pipeline.config import WorkflowConfig
from repro.sim.task import BatchSimulationTask, ResultBlock
from repro.sweep import SweepSpec, make_fused_tasks, run_sweep
from tests.cwc.test_kernels import PythonKernel

needs_numba = pytest.mark.skipif(not kernel_available("numba"),
                                 reason="numba not installed")

T_END, QUANTUM, SAMPLE = 4.0, 1.5, 0.5

POINTS = [{"translation": 0.2}, {},
          {"translation": 0.9, "transport_in": 0.4}]


def _use_python_kernel(batch):
    batch._kernel = PythonKernel(batch.compiled)
    batch.kernel_name = "python"


def drain(task):
    """Run a task to completion; returns its results quantum by quantum."""
    out = []
    while True:
        result = task.run_quantum()
        out.append(result)
        done = (result.done if isinstance(result, ResultBlock)
                else all(r.done for r in result))
        if done:
            return out


def member_streams(quanta_blocks):
    """task_id -> (times bytes, values bytes, end time, end steps) from
    a fused task's ResultBlock stream."""
    streams = {}
    for block in quanta_blocks:
        for member in block.unpack():
            t, v, _, _ = streams.get(
                member.task_id, (b"", b"", None, None))
            streams[member.task_id] = (
                t + member._times.tobytes(),
                v + member._values.tobytes(),
                member.time, member.steps)
    return streams


def run_fused(network, spec, kernel_obj=None, kernel_name="numpy"):
    tasks = make_fused_tasks(network, spec, T_END, QUANTUM, SAMPLE,
                             engine_kernel=kernel_name)
    if kernel_obj is not None:
        for task in tasks:
            _use_python_kernel(task.batch)
    streams = {}
    for task in tasks:
        streams.update(member_streams(drain(task)))
    return streams


def run_solo(network, spec, point, kernel_obj=None, kernel_name="numpy"):
    """Point ``point`` the pre-sweep way: one solo single-block task."""
    T = spec.n_trajectories
    batch = BatchFlatSimulator(
        compile_network(network.with_rates(spec.points[point])), T,
        seed=spec.seed_of(point), kernel=kernel_name)
    if kernel_obj is not None:
        _use_python_kernel(batch)
    task = BatchSimulationTask(
        range(point * T, (point + 1) * T), batch, T_END, QUANTUM, SAMPLE,
        coalesce=True)
    return member_streams(drain(task))


@pytest.mark.parametrize("kernel_obj,kernel_name", [
    pytest.param(None, "numpy", id="numpy"),
    pytest.param(PythonKernel, "numpy", id="python-proxy"),
    pytest.param(None, "numba", id="numba", marks=needs_numba),
])
class TestFusedBitIdentity:
    def test_fused_block_matches_solo_runs(self, neurospora_small,
                                           kernel_obj, kernel_name):
        """One fused block covering every point == P solo runs."""
        spec = SweepSpec(POINTS, n_trajectories=6, seed=11)
        fused = run_fused(neurospora_small, spec, kernel_obj, kernel_name)
        assert len(fused) == spec.n_rows
        for p in range(spec.n_points):
            solo = run_solo(neurospora_small, spec, p, kernel_obj,
                            kernel_name)
            for task_id, stream in solo.items():
                assert fused[task_id] == stream, (
                    f"point {p} task {task_id} diverged")

    def test_block_split_does_not_change_trajectories(
            self, neurospora_small, kernel_obj, kernel_name):
        """Fusing 1, 2 or all points per block yields the same bytes --
        the block boundary is pure scheduling."""
        specs = [SweepSpec(POINTS, n_trajectories=4, seed=3,
                           points_per_block=k) for k in (1, 2, 3)]
        runs = [run_fused(neurospora_small, spec, kernel_obj, kernel_name)
                for spec in specs]
        assert runs[0] == runs[1] == runs[2]


class TestRunSweepEquivalence:
    def test_per_point_means_match_solo_workflows(self, neurospora_small):
        """End to end: run_sweep's (point, cut) means equal each
        point's solo run_workflow cut means exactly."""
        spec = SweepSpec(POINTS, n_trajectories=8, seed=5)
        sweep = run_sweep(neurospora_small, spec, t_end=T_END,
                          quantum=QUANTUM, sample_every=SAMPLE,
                          n_sim_workers=2)
        n_cuts = int(round(T_END / SAMPLE)) + 1
        assert sweep.mean.shape == (spec.n_points, n_cuts, 3)
        for p in range(spec.n_points):
            solo = run_workflow(
                neurospora_small.with_rates(spec.points[p]),
                WorkflowConfig(
                    n_simulations=spec.n_trajectories, t_end=T_END,
                    sample_every=SAMPLE, quantum=QUANTUM,
                    n_sim_workers=2, window_size=n_cuts,
                    seed=spec.seed_of(p), engine="batch",
                    batch_size=spec.n_trajectories))
            solo_means = np.asarray(
                [cut.mean for cut in solo.cut_statistics()])
            assert np.array_equal(sweep.mean[p], solo_means)

    def test_sequential_backend_matches_threads(self, neurospora_small):
        spec = SweepSpec(POINTS[:2], n_trajectories=4, seed=2)
        kwargs = dict(t_end=T_END, quantum=QUANTUM, sample_every=SAMPLE,
                      n_sim_workers=2)
        threads = run_sweep(neurospora_small, spec, **kwargs)
        sequential = run_sweep(neurospora_small, spec,
                               backend="sequential", **kwargs)
        assert np.array_equal(threads.mean, sequential.mean)
        assert np.array_equal(threads.variance, sequential.variance)
