"""run_sweep orchestration: the accumulator, tracing and steering."""

import numpy as np
import pytest

from repro.cwc.batch import clear_network_cache
from repro.ff.trace import Tracer
from repro.sim.trajectory import Cut, CutBlock
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.runner import SweepAccumulator

POINTS = [{"translation": 0.3}, {"translation": 0.7}]


class TestAccumulator:
    def _make(self, P=2, T=3, n_cuts=4, n_obs=2):
        return SweepAccumulator(P, T, n_cuts, n_obs)

    def test_cut_block_reduction(self):
        acc = self._make()
        # (n_cuts, P*T, n_obs): point 0 rows constant 1, point 1 rows 2
        data = np.concatenate(
            [np.full((2, 3, 2), 1.0), np.full((2, 3, 2), 2.0)], axis=1)
        acc.svc(CutBlock(grid_start=1, times=np.array([0.5, 1.0]),
                         data=data))
        assert np.array_equal(acc.mean[0, 1:3], np.full((2, 2), 1.0))
        assert np.array_equal(acc.mean[1, 1:3], np.full((2, 2), 2.0))
        assert np.array_equal(acc.variance[:, 1:3], np.zeros((2, 2, 2)))
        assert acc.times[1] == 0.5 and acc.times[2] == 1.0
        assert np.isnan(acc.times[0]) and np.isnan(acc.times[3])
        assert acc.cuts_seen == 2

    def test_cut_block_sample_variance(self):
        acc = self._make(P=1, T=3, n_cuts=1, n_obs=1)
        data = np.array([[[1.0], [2.0], [3.0]]])  # one cut, 3 rows
        acc.svc(CutBlock(grid_start=0, times=np.array([0.0]), data=data))
        assert acc.variance[0, 0, 0] == pytest.approx(1.0)  # ddof=1

    def test_single_trajectory_uses_population_variance(self):
        acc = self._make(P=2, T=1, n_cuts=1, n_obs=1)
        data = np.array([[[4.0], [6.0]]])
        acc.svc(CutBlock(grid_start=0, times=np.array([0.0]), data=data))
        assert np.array_equal(acc.variance[:, 0, 0], np.zeros(2))

    def test_scalar_cut_path(self):
        acc = self._make(P=2, T=2, n_cuts=2, n_obs=1)
        cut = Cut(1, 0.5, data=np.array([[1.0], [3.0], [5.0], [7.0]]))
        acc.svc(cut)
        assert np.array_equal(acc.mean[:, 1, 0], [2.0, 6.0])
        assert acc.times[1] == 0.5

    def test_rejects_foreign_items(self):
        with pytest.raises(TypeError, match="sweep accumulator"):
            self._make().svc(object())


class TestRunSweep:
    def test_shapes_and_grid(self, neurospora_small):
        spec = SweepSpec(POINTS, n_trajectories=4, seed=1)
        result = run_sweep(neurospora_small, spec, t_end=2.0,
                           quantum=1.0, sample_every=0.5,
                           n_sim_workers=2)
        assert result.observable_names == ("M", "FC", "FN")
        assert result.mean.shape == (2, 5, 3)
        assert result.variance.shape == (2, 5, 3)
        assert np.array_equal(result.times, np.arange(5) * 0.5)
        assert result.n_points == 2 and result.n_cuts == 5

    def test_point_matrix_views(self, neurospora_small):
        spec = SweepSpec(POINTS, n_trajectories=4, seed=1)
        result = run_sweep(neurospora_small, spec, t_end=2.0,
                           quantum=1.0, sample_every=0.5,
                           n_sim_workers=2)
        assert np.array_equal(result.point_matrix("M"),
                              result.mean[:, :, 0])
        assert np.array_equal(result.point_matrix(2, "variance"),
                              result.variance[:, :, 2])
        with pytest.raises(ValueError):
            result.observable_index("nope")

    def test_trace_counters(self, neurospora_small):
        clear_network_cache()
        spec = SweepSpec(POINTS, n_trajectories=4, seed=1,
                         points_per_block=1)
        kwargs = dict(t_end=2.0, quantum=1.0, sample_every=0.5,
                      n_sim_workers=2)
        run_sweep(neurospora_small, spec, **kwargs)  # warm the cache
        tracer = Tracer()
        result = run_sweep(neurospora_small, spec, tracer=tracer,
                           **kwargs)
        assert result.trace_report is not None
        counters = tracer.report().counters
        assert counters.get("sweep.cuts", 0) == result.n_cuts
        # the warm run compiled this network; the traced run hits
        assert counters.get("sim.network_cache_hits", 0) >= 1

    def test_stop_requested_drains_early(self, neurospora_small):
        spec = SweepSpec(POINTS, n_trajectories=4, seed=1)
        result = run_sweep(neurospora_small, spec, t_end=50.0,
                           quantum=0.5, sample_every=0.5,
                           n_sim_workers=2,
                           stop_requested=lambda: True)
        # cancelled before the horizon: unreached cuts stay NaN
        assert np.isnan(result.times).any()
