"""SweepSpec: points, grids, blocks, seeds and the JSON form."""

import pytest

from repro.sweep import SweepSpec
from repro.sweep.spec import DEFAULT_ROWS_PER_BLOCK


class TestConstruction:
    def test_points_are_copied(self):
        point = {"bind": 1.0}
        spec = SweepSpec([point])
        point["bind"] = 99.0
        assert spec.points[0] == {"bind": 1.0}

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            SweepSpec([])

    def test_bad_trajectory_count_rejected(self):
        with pytest.raises(ValueError, match="n_trajectories"):
            SweepSpec([{}], n_trajectories=0)

    def test_bad_points_per_block_rejected(self):
        with pytest.raises(ValueError, match="points_per_block"):
            SweepSpec([{}], points_per_block=0)

    def test_counts(self):
        spec = SweepSpec([{}, {}, {}], n_trajectories=8)
        assert spec.n_points == 3
        assert spec.n_rows == 24


class TestGrid:
    def test_last_axis_varies_fastest(self):
        spec = SweepSpec.grid({"a": [1.0, 2.0], "b": [10.0, 20.0]})
        assert spec.points == [
            {"a": 1.0, "b": 10.0}, {"a": 1.0, "b": 20.0},
            {"a": 2.0, "b": 10.0}, {"a": 2.0, "b": 20.0}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec.grid({})


class TestSeedsAndBlocks:
    def test_seed_of_is_solo_run_seed(self):
        spec = SweepSpec([{}] * 4, seed=10)
        assert [spec.seed_of(p) for p in range(4)] == [10, 11, 12, 13]

    def test_blocks_cover_every_point_once(self):
        spec = SweepSpec([{}] * 10, n_trajectories=2, points_per_block=3)
        ranges = list(spec.blocks())
        assert [list(r) for r in ranges] == [
            [0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_default_block_fits_row_budget(self):
        spec = SweepSpec([{}] * 1000, n_trajectories=64)
        per_block = spec.resolved_points_per_block()
        assert per_block == DEFAULT_ROWS_PER_BLOCK // 64
        assert per_block * 64 <= DEFAULT_ROWS_PER_BLOCK

    def test_huge_trajectory_count_still_one_point_per_block(self):
        spec = SweepSpec([{}] * 3, n_trajectories=2 * DEFAULT_ROWS_PER_BLOCK)
        assert spec.resolved_points_per_block() == 1


class TestValidate:
    def test_unknown_reaction_fails_fast(self, neurospora_small):
        spec = SweepSpec([{"translation": 0.5}, {"no_such_reaction": 1.0}])
        with pytest.raises((KeyError, ValueError)):
            spec.validate(neurospora_small)

    def test_valid_overrides_pass(self, neurospora_small):
        SweepSpec([{"translation": 0.5}, {}]).validate(neurospora_small)


class TestJsonForm:
    def test_roundtrip(self):
        spec = SweepSpec([{"a": 1.0}, {"a": 2.0}], n_trajectories=16,
                         seed=7, points_per_block=1)
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_grid_payload(self):
        spec = SweepSpec.from_dict(
            {"grid": {"a": [1.0, 2.0]}, "n_trajectories": 4, "seed": 3})
        assert spec.points == [{"a": 1.0}, {"a": 2.0}]
        assert spec.n_trajectories == 4
        assert spec.seed == 3

    def test_missing_points_rejected(self):
        with pytest.raises(ValueError, match="'points' list or a 'grid'"):
            SweepSpec.from_dict({"n_trajectories": 4})

    def test_string_points_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"points": "not-a-list"})
