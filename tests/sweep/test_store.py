"""The columnar sweep store: write, mmap back, mine rows."""

import json

import numpy as np
import pytest

from repro.pipeline.storage import (SWEEP_STORE_FORMAT, load_sweep_store,
                                    save_sweep_store)
from repro.sweep import SweepSpec
from repro.sweep.runner import SweepResult


def make_result(P=3, n_cuts=5, names=("M", "FC")):
    rng = np.random.default_rng(0)
    spec = SweepSpec([{"translation": 0.1 * (p + 1)} for p in range(P)],
                     n_trajectories=4, seed=2)
    return SweepResult(
        spec=spec, observable_names=tuple(names),
        times=np.arange(n_cuts) * 0.5,
        mean=rng.random((P, n_cuts, len(names))),
        variance=rng.random((P, n_cuts, len(names))))


class TestRoundTrip:
    def test_matrices_survive_exactly(self, tmp_path):
        result = make_result()
        store = load_sweep_store(save_sweep_store(result, tmp_path / "s"))
        assert store.observables == ["M", "FC"]
        assert store.n_points == 3 and store.n_cuts == 5
        assert np.array_equal(store.times, result.times)
        for i, name in enumerate(result.observable_names):
            for stat in ("mean", "variance"):
                assert np.array_equal(store.matrix(name, stat),
                                      result.point_matrix(i, stat))

    def test_matrices_are_memory_mapped(self, tmp_path):
        store = load_sweep_store(
            save_sweep_store(make_result(), tmp_path / "s"))
        assert isinstance(store.matrix("M"), np.memmap)
        assert store.matrix("M").flags["C_CONTIGUOUS"]

    def test_point_row_access(self, tmp_path):
        result = make_result()
        store = load_sweep_store(save_sweep_store(result, tmp_path / "s"))
        assert np.array_equal(store.point(1, "FC"),
                              result.point_matrix("FC")[1])

    def test_spec_survives_in_manifest(self, tmp_path):
        result = make_result()
        store = load_sweep_store(save_sweep_store(result, tmp_path / "s"))
        assert SweepSpec.from_dict(store.spec_dict()) == result.spec


class TestLayout:
    def test_observable_names_are_sanitised(self, tmp_path):
        result = make_result(names=("a/b", "c d"))
        path = save_sweep_store(result, tmp_path / "s")
        files = json.loads((path / "manifest.json").read_text())["files"]
        assert files["a/b"]["mean"] == "a_b__mean.npy"
        assert (path / "c_d__variance.npy").exists()
        store = load_sweep_store(path)
        assert np.array_equal(store.matrix("a/b"),
                              result.point_matrix("a/b"))

    def test_colliding_sanitised_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="collide"):
            save_sweep_store(make_result(names=("a/b", "a_b")),
                             tmp_path / "s")

    def test_unknown_format_rejected(self, tmp_path):
        path = save_sweep_store(make_result(), tmp_path / "s")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format"] = SWEEP_STORE_FORMAT + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_sweep_store(path)
