"""Every example must at least import cleanly (full runs are manual /
documented; the cheap ones execute end to end here)."""

import importlib
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    p.stem for p in
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.fixture(autouse=True)
def examples_on_path():
    path = str(pathlib.Path(__file__).parent.parent / "examples")
    sys.path.insert(0, path)
    yield
    sys.path.remove(path)


class TestExamples:
    def test_all_examples_present(self):
        assert {"quickstart", "neurospora_circadian", "toggle_kmeans",
                "distributed_cloud", "gpu_offload",
                "methods_comparison", "traced_run"}.issubset(set(EXAMPLES))

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_imports_cleanly(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "main")

    def test_quickstart_runs(self, capsys):
        importlib.import_module("quickstart").main()
        out = capsys.readouterr().out
        assert "mass check" in out
        assert "conserved = 200" in out
