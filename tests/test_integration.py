"""Cross-cutting integration tests: the science through the full stack."""

import pytest

from repro.analysis.peaks import ensemble_period
from repro.models import neurospora_network, toggle_switch_network
from repro.pipeline import WorkflowConfig, run_workflow


class TestCircadianScience:
    @pytest.mark.slow
    def test_stochastic_period_matches_deterministic(self):
        """The headline result of the use case: the farmed stochastic
        ensemble recovers the ~21.5 h circadian period of the published
        deterministic model."""
        omega = 60
        cfg = WorkflowConfig(
            n_simulations=8, t_end=96.0, sample_every=0.5, quantum=4.0,
            n_sim_workers=4, n_stat_workers=2, window_size=24,
            seed=0, keep_cuts=True)
        result = run_workflow(neurospora_network(omega=omega), cfg)
        trajectories = result.trajectories()
        estimate = ensemble_period(
            [(t.times, t.column(0)) for t in trajectories],
            min_prominence=0.2 * omega, smooth_width=5,
            discard_transient=10.0)
        assert estimate.n_periods >= 15
        assert estimate.mean == pytest.approx(21.5, abs=2.5)

    def test_ensemble_mean_oscillates(self):
        cfg = WorkflowConfig(
            n_simulations=6, t_end=48.0, sample_every=0.5, quantum=4.0,
            n_sim_workers=3, window_size=16, seed=1)
        result = run_workflow(neurospora_network(omega=40), cfg)
        _times, means = result.mean_trajectory(0)
        assert max(means) > 1.5 * (min(means) + 1)


class TestMultistableMining:
    def test_kmeans_detects_bimodality_online(self):
        """On the toggle switch, the k-means stat engine separates the
        two expression states at late cuts -- the paper's motivation for
        on-line clustering."""
        cfg = WorkflowConfig(
            n_simulations=12, t_end=30.0, sample_every=1.0, quantum=5.0,
            n_sim_workers=4, window_size=10, kmeans_k=2, seed=3)
        result = run_workflow(toggle_switch_network(omega=30), cfg)
        last = result.windows[-1]
        clusters = last.clusters[0]  # observable U at the final cut
        centroids = sorted(c[0] for c in clusters.centroids)
        sizes = clusters.cluster_sizes()
        # two well-separated occupied modes
        assert centroids[1] - centroids[0] > 20
        assert min(sizes) >= 2

    def test_variance_grows_as_trajectories_commit(self):
        cfg = WorkflowConfig(
            n_simulations=10, t_end=25.0, sample_every=1.0, quantum=5.0,
            n_sim_workers=4, window_size=26, seed=5)
        result = run_workflow(toggle_switch_network(omega=30), cfg)
        stats = result.cut_statistics()
        early = stats[1].variance[0]
        late = stats[-1].variance[0]
        assert late > early
